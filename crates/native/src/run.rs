//! The native threaded executor: one OS thread per simulated processor,
//! running the certified SPMD schedule over shared `f64` arenas.
//!
//! ## Bit-identity argument
//!
//! The simulator executes processors' lanes sequentially; this backend
//! executes them concurrently. The final arena contents are nevertheless
//! bit-identical because
//!
//! 1. every worker walks exactly the iteration subset the simulator's
//!    lane walks (same `owned_iter`, same gates, same tile math), and
//!    evaluates statement bodies with the same recursive f64 operation
//!    order — so each individual write stores the identical bits;
//! 2. the certified schedule is race-free between sync points (the
//!    happens-before detector proves it; the fuzz oracle asserts it for
//!    every generated program), so no two workers touch the same slot
//!    within a sync-free window and concurrent execution cannot reorder
//!    conflicting writes;
//! 3. every `SyncKind` edge becomes a real happens-before edge here —
//!    `Barrier` a rendezvous on the abortable barrier, `ProducerWait` an
//!    all-to-leader-to-all channel handoff, pipeline tiles per-pair token
//!    channels — so writes before an edge are visible after it (arena
//!    loads/stores themselves are `Relaxed`; the sync edges carry all
//!    ordering);
//! 4. the one schedule-level exception, replicated-write init nests (all
//!    processors sweep the *same* shared slots), is executed leader-only:
//!    thread 0 runs every processor's pass in ascending order, which is
//!    precisely the simulator's sequential semantics.
//!
//! ## Supervision
//!
//! Worker panics (e.g. injected by the chaos harness through
//! [`NativeOptions::worker_hook`]) are caught per worker; the dying
//! worker tears down the barrier and every peer unwinds with a structured
//! `DctError` instead of deadlocking. Cooperative cancellation reaches a
//! uniform verdict at sync points: the barrier leader (or the handoff
//! leader) reads the token once and publishes the decision, so either all
//! workers stop at a boundary or none do.

use crate::barrier::{AbortableBarrier, WaitOutcome};
use crate::plan::{NativePlan, NestStep, SyncAction};
use dct_ir::{
    checksum_arenas, panic_message, ArrayRef, BinOp, CancelToken, ChecksumAcc, DctError,
    DctResult, Expr, Phase,
};
use dct_spmd::{owned_iter, LevelSched, SpmdNest, SpmdProgram};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Control-channel messages: pipeline tile tokens and handoff arrivals
/// are `CONT`; the handoff leader broadcasts `STOP` on cancellation.
const CONT: u8 = 0;
const STOP: u8 = 1;

/// Options of one native execution.
#[derive(Clone, Default)]
pub struct NativeOptions {
    /// Cooperative cancellation, polled by the sync-point leader so every
    /// worker reaches the same stop/continue verdict (the PR 6 watchdog
    /// machinery drives this token).
    pub cancel: Option<CancelToken>,
    /// Scheduling-stress seed: randomized per-worker spawn delays plus
    /// yield/sleep injection at sync points. Results must be (and are)
    /// bit-identical for every seed — the stress tests repeat runs under
    /// fresh seeds and compare checksums.
    pub jitter: Option<u64>,
    /// Chaos hook, called once per worker at startup with the processor
    /// id. May panic (the run fails with a structured error, no
    /// deadlock) or sleep (the run stalls until the watchdog cancels).
    /// Lives here so the fault closures stay in the bench crate and this
    /// crate keeps its zero-panic gate.
    pub worker_hook: Option<Arc<dyn Fn(usize) + Send + Sync>>,
}

/// Result of one native execution.
#[derive(Clone, Debug)]
pub struct NativeRun {
    /// Whole-program checksum over the final arenas, in the repository's
    /// checksum-bits format — bit-comparable with the simulator's
    /// `RunResult::checksum` for the same compiled configuration.
    pub checksum: f64,
    /// Per-worker checksum over the values that worker wrote, in its
    /// program order (diagnostic fingerprint; deterministic per config).
    pub thread_checksums: Vec<f64>,
    /// Barrier sync points executed (matches the simulator's count when
    /// the run completes).
    pub barriers: u64,
    /// Producer-wait handoffs executed.
    pub handoffs: u64,
    /// The run stopped at a sync point on its cancellation token; arenas
    /// and checksums are partial.
    pub cancelled: bool,
    /// Host wall-clock of the threaded execution.
    pub wall_secs: f64,
    pub nprocs: usize,
}

/// Cache-line padding of one shared arena.
///
/// The layout linearizes first-dim-fastest, so the slowest (last) final
/// dimension — the processor dimension after a data decomposition —
/// splits the arena into contiguous chunks, one per value of that
/// dimension. Backing chunks at their logical length lets two
/// processors' extents share a 64-byte line at every chunk boundary:
/// real false sharing on real hardware (the effect Section 4 of the
/// paper transforms data to avoid). Physically rounding each chunk up
/// to a whole number of lines (8 f64) gives every chunk its own lines.
///
/// Logical addresses (the layout's) are unchanged; only the physical
/// slot mapping differs, and the padding slots are never read — so
/// checksums and values stay bit-identical to the unpadded backend and
/// the simulator, which the padding differential test pins.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ArenaPad {
    /// Logical slots per slowest-dim chunk.
    pub chunk: usize,
    /// Physical slots per chunk (`chunk` rounded up to 8 f64 = 64B).
    pub padded: usize,
    /// Chunk count (the slowest final dimension's extent).
    pub chunks: usize,
}

impl ArenaPad {
    /// f64 elements per cache line (64-byte lines).
    pub const LINE_F64: usize = 8;

    /// Padding of one array layout. Degenerate shapes (empty arrays,
    /// single-chunk arenas — nothing to false-share with) stay unpadded.
    pub fn of_layout(size: usize, final_dims: &[i64]) -> ArenaPad {
        let last = final_dims.last().copied().unwrap_or(0).max(0) as usize;
        if last <= 1 || size == 0 || size % last != 0 {
            return ArenaPad { chunk: size, padded: size, chunks: 1 };
        }
        let chunk = size / last;
        let padded = chunk.div_ceil(Self::LINE_F64) * Self::LINE_F64;
        ArenaPad { chunk, padded, chunks: last }
    }

    /// Physical arena length, padding included.
    pub fn physical_size(&self) -> usize {
        self.padded * self.chunks
    }

    /// Logical arena length (the layout's `size()`).
    pub fn logical_size(&self) -> usize {
        self.chunk * self.chunks
    }

    /// Did padding actually engage for this array?
    pub fn is_padded(&self) -> bool {
        self.padded != self.chunk
    }

    /// Physical slot of a logical address.
    #[inline]
    pub fn slot(&self, logical: usize) -> usize {
        if self.padded == self.chunk {
            logical
        } else {
            logical / self.chunk * self.padded + logical % self.chunk
        }
    }
}

/// The padding the native backend will use for each of `sp`'s arrays —
/// introspection for the differential tests (which assert both that
/// padding engages and that results stay bit-identical).
///
/// Only distributed, restructured arrays are padded: those are exactly
/// the ones whose slowest final dimension is a processor-grid dimension,
/// so a chunk is one processor's owned extent. Shared and replicated
/// arrays keep their exact layout (their slowest dim is a data
/// dimension; "padding" it would be per-element memory blowup, not
/// false-sharing avoidance).
pub fn arena_padding(sp: &SpmdProgram) -> Vec<ArenaPad> {
    sp.layouts
        .iter()
        .map(|l| {
            let size = l.layout.size().max(0) as usize;
            if l.dist_info.is_empty() || !l.transformed {
                ArenaPad { chunk: size, padded: size, chunks: 1 }
            } else {
                ArenaPad::of_layout(size, l.layout.final_dims())
            }
        })
        .collect()
}

/// Why a worker left the main loop early.
enum Halt {
    /// Uniform stop verdict at a sync point.
    Cancelled,
    /// A peer died; the barrier was torn down.
    Abort,
}

enum WorkerOut {
    Done { checksum: f64, cancelled: bool },
    Failed,
}

struct Shared<'a> {
    sp: &'a SpmdProgram,
    /// Arena element bits (`f64::to_bits`), cache-line padded per
    /// [`ArenaPad`]. `Relaxed` everywhere: the schedule is race-free and
    /// the sync edges carry all ordering.
    arenas: Vec<Vec<AtomicU64>>,
    /// Physical slot mapping of each arena (logical addresses from the
    /// layout pass through here before touching `arenas`).
    pads: Vec<ArenaPad>,
    coords: Vec<Vec<usize>>,
    barrier: AbortableBarrier,
    /// Published stop verdict (sticky; written by sync-point leaders).
    stop: AtomicBool,
    /// A worker died; peers polling channels bail out.
    aborted: AtomicBool,
    abort_msg: Mutex<Option<String>>,
    barriers: AtomicU64,
    handoffs: AtomicU64,
    cancel: Option<CancelToken>,
}

impl Shared<'_> {
    fn fail(&self, msg: String) {
        let mut g = self.abort_msg.lock().unwrap_or_else(|e| e.into_inner());
        g.get_or_insert(msg);
        drop(g);
        self.aborted.store(true, Ordering::SeqCst);
        self.barrier.abort();
    }

    fn cancel_requested(&self) -> bool {
        self.cancel.as_ref().is_some_and(|t| t.is_cancelled())
    }
}

/// splitmix64 — tiny, seedable, good enough for scheduling jitter.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// Reusable per-worker buffers for allocation-free address computation.
#[derive(Default)]
struct Scratch {
    idx: Vec<i64>,
    lay: Vec<i64>,
    ivec: Vec<i64>,
}

struct Worker<'a> {
    sh: &'a Shared<'a>,
    p: usize,
    /// `txs[q]` sends to worker `q`; `rxs[q]` receives from worker `q`.
    /// Per-pair FIFO channels carry pipeline tile tokens and handoff
    /// control without interference (tokens of a nest fully precede the
    /// nest's trailing handoff messages on any given pair).
    txs: Vec<Sender<u8>>,
    rxs: Vec<Receiver<u8>>,
    acc: ChecksumAcc,
    rng: Option<Rng>,
    scratch: Scratch,
}

impl Worker<'_> {
    fn spawn_jitter(&mut self) {
        if let Some(r) = self.rng.as_mut() {
            let us = r.below(150);
            if us > 0 {
                std::thread::sleep(Duration::from_micros(us));
            }
        }
    }

    /// Scheduling perturbation at sync points: results must be identical
    /// whether or not this runs (the stress tests pin that).
    fn maybe_yield(&mut self) {
        if let Some(r) = self.rng.as_mut() {
            match r.below(3) {
                0 => std::thread::yield_now(),
                1 => {
                    let us = r.below(40);
                    std::thread::sleep(Duration::from_micros(us));
                }
                _ => {}
            }
        }
    }

    /// Receive one control byte from worker `from`, bailing out if a
    /// peer died (timeout polling keeps a dead pipeline from deadlocking
    /// the pool).
    fn recv_ctl(&mut self, from: usize) -> Result<u8, Halt> {
        loop {
            if self.sh.aborted.load(Ordering::SeqCst) {
                return Err(Halt::Abort);
            }
            match self.rxs[from].recv_timeout(Duration::from_millis(20)) {
                Ok(v) => return Ok(v),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return Err(Halt::Abort),
            }
        }
    }

    /// Whole program, this worker's lane.
    fn run(&mut self, plan: &NativePlan) -> Result<(), Halt> {
        let sp = self.sh.sp;
        let mut params = sp.params.clone();
        if let Some(tp) = sp.time_param {
            params[tp] = 0;
        }
        for step in &plan.init_steps {
            self.run_step(step, &params)?;
            self.sync(SyncAction::Barrier)?;
        }
        for t in 0..plan.time_steps {
            if let Some(tp) = sp.time_param {
                params[tp] = t;
            }
            for (j, step) in plan.steps.iter().enumerate() {
                self.run_step(step, &params)?;
                // The trailing sync of the very last nest execution is
                // skipped; the thread join plays that role (exactly like
                // the simulator's final clock max).
                let last = t == plan.time_steps - 1 && j == plan.steps.len() - 1;
                if !last {
                    self.sync(step.sync)?;
                }
            }
        }
        Ok(())
    }

    fn run_step(&mut self, step: &NestStep, params: &[i64]) -> Result<(), Halt> {
        let sp = self.sh.sp;
        let nest = if step.init { &sp.init[step.nest] } else { &sp.nests[step.nest] };
        if step.leader_only {
            // Replicated-write nest: every processor's pass sweeps the
            // same shared slots, so the leader runs all passes in
            // ascending order — the simulator's sequential semantics,
            // reproduced exactly (the nest is barrier-bounded).
            if self.p == 0 {
                for q in 0..sp.nprocs {
                    self.walk_nest(nest, q, params, None);
                }
            }
            Ok(())
        } else if step.pipelined {
            self.run_pipelined(nest, params)
        } else {
            if self.participates(nest, params) {
                self.walk_nest(nest, self.p, params, None);
            }
            Ok(())
        }
    }

    fn participates(&self, nest: &SpmdNest, params: &[i64]) -> bool {
        proc_participates(self.sh.sp, &self.sh.coords, self.p, nest, params)
    }

    /// Doacross pipeline: chain members advance tile-by-tile behind their
    /// predecessor through the per-pair token channels. Chain structure
    /// and tile math mirror the simulator's `exec_pipelined` exactly.
    fn run_pipelined(&mut self, nest: &SpmdNest, params: &[i64]) -> Result<(), Halt> {
        let Some(spec) = nest.pipeline else {
            if self.participates(nest, params) {
                self.walk_nest(nest, self.p, params, None);
            }
            return Ok(());
        };
        let sh = self.sh;
        let parts: Vec<usize> = (0..sh.sp.nprocs)
            .filter(|&p| proc_participates(sh.sp, &sh.coords, p, nest, params))
            .collect();
        let pipe_dim = match nest.sched[spec.seq_level] {
            LevelSched::Dist { proc_dim, .. } => proc_dim,
            _ => 0,
        };
        let zeros = vec![0i64; nest.source.depth];
        let tlo = nest.source.bounds[spec.tile_level].eval_lo(&zeros, params);
        let thi = nest.source.bounds[spec.tile_level].eval_hi(&zeros, params);
        let span = (thi - tlo + 1).max(0);
        if span == 0 {
            return Ok(());
        }
        let ntiles = spec.tiles.min(span).max(1);
        let tile = (span + ntiles - 1) / ntiles;

        // Same grouping as the simulator: chains keyed by the coords with
        // the pipeline dim zeroed, members ordered by pipeline coord.
        // Every worker derives the identical structure (pure function of
        // the program and params), so the token protocol needs no setup.
        let mut chains: std::collections::BTreeMap<Vec<usize>, Vec<usize>> = Default::default();
        for &p in &parts {
            let mut key = sh.coords[p].clone();
            if pipe_dim < key.len() {
                key[pipe_dim] = 0;
            }
            chains.entry(key).or_default().push(p);
        }
        let mut mine: Option<Vec<usize>> = None;
        for chain in chains.values_mut() {
            chain.sort_by_key(|&p| sh.coords[p].get(pipe_dim).copied().unwrap_or(0));
            if chain.contains(&self.p) {
                mine = Some(chain.clone());
            }
        }
        let Some(chain) = mine else { return Ok(()) };
        let Some(pos) = chain.iter().position(|&q| q == self.p) else { return Ok(()) };
        let pred = if pos > 0 { Some(chain[pos - 1]) } else { None };
        let succ = chain.get(pos + 1).copied();
        for r in 0..ntiles {
            let rlo = tlo + r * tile;
            let rhi = (rlo + tile - 1).min(thi);
            if let Some(q) = pred {
                // The predecessor's token for tile r is the certified
                // handoff edge: its writes up to tile r happen-before
                // this member's tile r.
                self.recv_ctl(q)?;
                self.maybe_yield();
            }
            self.walk_nest(nest, self.p, params, Some((spec.tile_level, rlo, rhi)));
            if let Some(q) = succ {
                let _ = self.txs[q].send(CONT);
            }
        }
        Ok(())
    }

    fn sync(&mut self, action: SyncAction) -> Result<(), Halt> {
        match action {
            SyncAction::Barrier => self.barrier_point(),
            SyncAction::Handoff => self.handoff_point(),
            SyncAction::None => Ok(()),
        }
    }

    /// Barrier sync with cancellation consensus: wait #1 gathers all
    /// workers, the elected leader reads the token once and publishes the
    /// verdict, wait #2 makes it visible to everyone — so all workers
    /// stop at the same boundary or none do.
    fn barrier_point(&mut self) -> Result<(), Halt> {
        self.maybe_yield();
        match self.sh.barrier.wait() {
            Ok(WaitOutcome::Leader) => {
                self.sh.barriers.fetch_add(1, Ordering::Relaxed);
                if self.sh.cancel_requested() {
                    self.sh.stop.store(true, Ordering::SeqCst);
                }
            }
            Ok(WaitOutcome::Follower) => {}
            Err(_) => return Err(Halt::Abort),
        }
        if self.sh.barrier.wait().is_err() {
            return Err(Halt::Abort);
        }
        if self.sh.stop.load(Ordering::SeqCst) {
            return Err(Halt::Cancelled);
        }
        Ok(())
    }

    /// Producer-wait handoff: all-to-leader-to-all over the control
    /// channels. Same barrier-strength happens-before edge the
    /// simulator's clock join models, at lock-handoff cost; worker 0 is
    /// the consensus leader.
    fn handoff_point(&mut self) -> Result<(), Halt> {
        self.maybe_yield();
        let n = self.sh.sp.nprocs;
        if n <= 1 {
            self.sh.handoffs.fetch_add(1, Ordering::Relaxed);
            if self.sh.cancel_requested() {
                return Err(Halt::Cancelled);
            }
            return Ok(());
        }
        if self.p == 0 {
            for q in 1..n {
                self.recv_ctl(q)?;
            }
            self.sh.handoffs.fetch_add(1, Ordering::Relaxed);
            let stop = self.sh.cancel_requested();
            if stop {
                self.sh.stop.store(true, Ordering::SeqCst);
            }
            let msg = if stop { STOP } else { CONT };
            for q in 1..n {
                let _ = self.txs[q].send(msg);
            }
            if stop {
                Err(Halt::Cancelled)
            } else {
                Ok(())
            }
        } else {
            let _ = self.txs[0].send(CONT);
            if self.recv_ctl(0)? == STOP {
                Err(Halt::Cancelled)
            } else {
                Ok(())
            }
        }
    }

    // ---- the walk: the simulator's general walk, values only ----

    fn walk_nest(
        &mut self,
        nest: &SpmdNest,
        proc: usize,
        params: &[i64],
        tile: Option<(usize, i64, i64)>,
    ) {
        let mut ivec = std::mem::take(&mut self.scratch.ivec);
        ivec.clear();
        ivec.resize(nest.source.depth, 0);
        self.walk(nest, proc, 0, &mut ivec, params, tile);
        self.scratch.ivec = ivec;
    }

    fn walk(
        &mut self,
        nest: &SpmdNest,
        proc: usize,
        level: usize,
        ivec: &mut Vec<i64>,
        params: &[i64],
        tile: Option<(usize, i64, i64)>,
    ) {
        if level == nest.source.depth {
            self.exec_body(nest, ivec, params);
            return;
        }
        let mut lo = nest.source.bounds[level].eval_lo(ivec, params);
        let mut hi = nest.source.bounds[level].eval_hi(ivec, params);
        if let Some((tl, rlo, rhi)) = tile {
            if tl == level {
                lo = lo.max(rlo);
                hi = hi.min(rhi);
            }
        }
        match &nest.sched[level] {
            LevelSched::Seq => {
                for v in lo..=hi {
                    ivec[level] = v;
                    self.walk(nest, proc, level + 1, ivec, params, tile);
                }
            }
            LevelSched::Dist { proc_dim, folding, extent, offset } => {
                let q = self.sh.coords[proc].get(*proc_dim).copied().unwrap_or(0) as i64;
                let procs = self.sh.sp.grid.get(*proc_dim).copied().unwrap_or(1) as i64;
                let off = offset.eval(&[], params);
                for v in owned_iter(lo, hi, off, *extent, procs, q, *folding) {
                    ivec[level] = v;
                    self.walk(nest, proc, level + 1, ivec, params, tile);
                }
            }
        }
        ivec[level] = 0;
    }

    fn exec_body(&mut self, nest: &SpmdNest, ivec: &[i64], params: &[i64]) {
        for s in &nest.source.body {
            // Evaluate the rhs before resolving the write, like the
            // simulator (matters when a statement reads its own target).
            let v = self.eval(&s.rhs, ivec, params);
            let x = s.lhs.array.0;
            let slot = self.slot_of(&s.lhs, ivec, params);
            self.sh.arenas[x][self.sh.pads[x].slot(slot)].store(v.to_bits(), Ordering::Relaxed);
            self.acc.push(v);
        }
    }

    /// Recursive f64 evaluation in the simulator's exact operation order.
    fn eval(&mut self, e: &Expr, ivec: &[i64], params: &[i64]) -> f64 {
        match e {
            Expr::Const(c) => *c,
            Expr::Index(l) => ivec[*l] as f64,
            Expr::Ref(r) => {
                let x = r.array.0;
                let slot = self.slot_of(r, ivec, params);
                f64::from_bits(
                    self.sh.arenas[x][self.sh.pads[x].slot(slot)].load(Ordering::Relaxed),
                )
            }
            Expr::Bin(op, a, b) => {
                let va = self.eval(a, ivec, params);
                let vb = self.eval(b, ivec, params);
                match op {
                    BinOp::Add => va + vb,
                    BinOp::Sub => va - vb,
                    BinOp::Mul => va * vb,
                    BinOp::Div => va / vb,
                }
            }
        }
    }

    /// Logical arena slot of a reference at an iteration point (callers
    /// map it through [`ArenaPad::slot`]). Slots ignore the replica
    /// stride: replicated arrays natively share one arena, and their
    /// leader-only writes reproduce the simulator's slot contents.
    fn slot_of(&mut self, r: &ArrayRef, ivec: &[i64], params: &[i64]) -> usize {
        let sc = &mut self.scratch;
        r.access.eval_into(ivec, params, &mut sc.idx);
        let lay = &self.sh.sp.layouts[r.array.0];
        lay.layout.address_of_buf(&sc.idx, &mut sc.lay) as usize
    }
}

fn proc_participates(
    sp: &SpmdProgram,
    coords: &[Vec<usize>],
    p: usize,
    nest: &SpmdNest,
    params: &[i64],
) -> bool {
    nest.gates.iter().all(|g| {
        let v = g.aff.eval(&[], params);
        let procs = sp.grid.get(g.proc_dim).copied().unwrap_or(1) as i64;
        let owner = if g.extent >= i64::MAX / 2 {
            v.rem_euclid(procs.max(1))
        } else {
            g.folding.owner(v, g.extent, procs.max(1))
        };
        coords[p].get(g.proc_dim).map_or(0, |&c| c as i64) == owner
    })
}

/// Execute the compiled program natively.
pub fn execute(sp: &SpmdProgram, opts: &NativeOptions) -> DctResult<NativeRun> {
    execute_inner(sp, opts).map(|(run, _)| run)
}

/// Execute and also return the final contents of every array in original
/// index order (bit-comparable with `simulate_with_values`).
pub fn execute_with_values(
    sp: &SpmdProgram,
    opts: &NativeOptions,
) -> DctResult<(NativeRun, Vec<Vec<f64>>)> {
    let (run, arenas) = execute_inner(sp, opts)?;
    let vals = (0..sp.layouts.len()).map(|x| values_of(sp, &arenas, x)).collect();
    Ok((run, vals))
}

fn execute_inner(
    sp: &SpmdProgram,
    opts: &NativeOptions,
) -> DctResult<(NativeRun, Vec<Vec<f64>>)> {
    let plan = NativePlan::lower(sp);
    let n = sp.nprocs.max(1);
    let pads = arena_padding(sp);
    let shared = Shared {
        sp,
        arenas: pads
            .iter()
            .map(|pad| (0..pad.physical_size()).map(|_| AtomicU64::new(0)).collect())
            .collect(),
        pads,
        coords: (0..n).map(|p| sp.coords_of(p)).collect(),
        barrier: AbortableBarrier::new(n),
        stop: AtomicBool::new(false),
        aborted: AtomicBool::new(false),
        abort_msg: Mutex::new(None),
        barriers: AtomicU64::new(0),
        handoffs: AtomicU64::new(0),
        cancel: opts.cancel.clone(),
    };

    // Per-pair FIFO control channels: rows_tx[p][q] sends p -> q,
    // rows_rx[p][q] receives at p from q.
    let mut rows_tx: Vec<Vec<Sender<u8>>> = (0..n).map(|_| Vec::with_capacity(n)).collect();
    let mut rows_rx: Vec<Vec<Receiver<u8>>> = (0..n).map(|_| Vec::with_capacity(n)).collect();
    for p in 0..n {
        for q in 0..n {
            let (tx, rx) = std::sync::mpsc::channel();
            rows_tx[p].push(tx);
            rows_rx[q].push(rx);
        }
    }
    let started = std::time::Instant::now();
    let shared_ref = &shared;
    let plan_ref = &plan;
    let outs: Vec<WorkerOut> = std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(n);
        for (p, (txs, rxs)) in rows_tx.drain(..).zip(rows_rx.drain(..)).enumerate() {
            let hook = opts.worker_hook.clone();
            let rng = opts.jitter.map(|seed| {
                let mut r = Rng::new(seed ^ (p as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15));
                r.next_u64();
                r
            });
            handles.push(s.spawn(move || {
                let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let mut w = Worker {
                        sh: shared_ref,
                        p,
                        txs,
                        rxs,
                        acc: ChecksumAcc::new(),
                        rng,
                        scratch: Scratch::default(),
                    };
                    w.spawn_jitter();
                    if let Some(h) = &hook {
                        h(p);
                    }
                    let r = w.run(plan_ref);
                    (r, w.acc.finish())
                }));
                match res {
                    Ok((Ok(()), cs)) => WorkerOut::Done { checksum: cs, cancelled: false },
                    Ok((Err(Halt::Cancelled), cs)) => {
                        WorkerOut::Done { checksum: cs, cancelled: true }
                    }
                    Ok((Err(Halt::Abort), _)) => WorkerOut::Failed,
                    Err(payload) => {
                        shared_ref.fail(panic_message(payload.as_ref()));
                        WorkerOut::Failed
                    }
                }
            }));
        }
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(out) => out,
                Err(payload) => {
                    shared_ref.fail(panic_message(payload.as_ref()));
                    WorkerOut::Failed
                }
            })
            .collect()
    });
    let wall_secs = started.elapsed().as_secs_f64();

    let failed = outs.iter().any(|o| matches!(o, WorkerOut::Failed));
    if failed || shared.aborted.load(Ordering::SeqCst) {
        let msg = shared
            .abort_msg
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
            .unwrap_or_else(|| "native worker aborted".to_string());
        return Err(DctError::internal(Phase::Native, msg));
    }
    let cancelled = outs
        .iter()
        .any(|o| matches!(o, WorkerOut::Done { cancelled: true, .. }));
    let thread_checksums = outs
        .iter()
        .map(|o| match o {
            WorkerOut::Done { checksum, .. } => *checksum,
            WorkerOut::Failed => 0.0,
        })
        .collect();
    // De-pad before anything downstream sees the arenas: the checksum
    // and the value extraction walk logical addresses only, so padded
    // and unpadded backends produce identical bits.
    let arenas: Vec<Vec<f64>> = shared
        .arenas
        .iter()
        .zip(&shared.pads)
        .map(|(a, pad)| {
            (0..pad.logical_size())
                .map(|s| f64::from_bits(a[pad.slot(s)].load(Ordering::Relaxed)))
                .collect()
        })
        .collect();
    let run = NativeRun {
        checksum: checksum_arenas(&arenas),
        thread_checksums,
        barriers: shared.barriers.load(Ordering::Relaxed),
        handoffs: shared.handoffs.load(Ordering::Relaxed),
        cancelled,
        wall_secs,
        nprocs: n,
    };
    Ok((run, arenas))
}

/// Array values in original index order (first dim fastest), identical
/// to the simulator's `Executor::values`.
fn values_of(sp: &SpmdProgram, arenas: &[Vec<f64>], x: usize) -> Vec<f64> {
    let lay = &sp.layouts[x];
    let dims = lay.layout.orig_dims().to_vec();
    let mut out = Vec::with_capacity(dims.iter().product::<i64>().max(0) as usize);
    let mut idx = vec![0i64; dims.len()];
    loop {
        out.push(arenas[x][lay.layout.address_of(&idx) as usize]);
        let mut d = 0;
        loop {
            if d == dims.len() {
                return out;
            }
            idx[d] += 1;
            if idx[d] < dims[d] {
                break;
            }
            idx[d] = 0;
            d += 1;
        }
    }
}

/// Lower and natively execute one configuration: the same certified
/// schedule `simulate` runs (via [`dct_spmd::lower`]).
pub fn run_native(
    prog: &dct_ir::Program,
    dec: &dct_decomp::Decomposition,
    sim: &dct_spmd::SimOptions,
    opts: &NativeOptions,
) -> DctResult<NativeRun> {
    let sp = dct_spmd::lower(prog, dec, sim)?;
    execute(&sp, opts)
}

/// [`run_native`], also returning final array values in original index
/// order.
pub fn run_native_with_values(
    prog: &dct_ir::Program,
    dec: &dct_decomp::Decomposition,
    sim: &dct_spmd::SimOptions,
    opts: &NativeOptions,
) -> DctResult<(NativeRun, Vec<Vec<f64>>)> {
    let sp = dct_spmd::lower(prog, dec, sim)?;
    execute_with_values(&sp, opts)
}
