//! Criterion benches of the machine simulator: raw access throughput for
//! the patterns that dominate the experiments (L1 hits, streaming misses,
//! false-sharing ping-pong).

use criterion::{criterion_group, criterion_main, Criterion};
use dct_machine::{Machine, MachineConfig};

fn machine(c: &mut Criterion) {
    c.bench_function("l1_hits", |b| {
        let mut m = Machine::new(MachineConfig::dash(4));
        m.access(0, 64, false);
        b.iter(|| std::hint::black_box(m.access(0, 64, false)))
    });

    c.bench_function("streaming_reads", |b| {
        let mut m = Machine::new(MachineConfig::dash(4));
        let mut addr = 0u64;
        b.iter(|| {
            addr = addr.wrapping_add(16) % (64 << 20);
            std::hint::black_box(m.access(0, addr, false))
        })
    });

    c.bench_function("false_sharing_pingpong", |b| {
        let mut m = Machine::new(MachineConfig::dash(2));
        let mut turn = 0usize;
        b.iter(|| {
            turn ^= 1;
            std::hint::black_box(m.access(turn, (turn as u64) * 8, true))
        })
    });

    c.bench_function("barrier_cost_model", |b| {
        let m = Machine::new(MachineConfig::dash(32));
        b.iter(|| std::hint::black_box(m.barrier_cost(32)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = machine
}
criterion_main!(benches);
