//! Fused segment-kernel throughput: each paper benchmark (they cover
//! the recognized kernel shapes — stencil's k-ary sum, lu's mul-add,
//! adi's fused multi-statement body, tomcatv/swm256 tapes, vpenta
//! axpy/copy) simulated with kernels on vs the postfix interpreter, at
//! one thread so the comparison isolates the single-lane hot loop.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dct_core::{Compiler, Strategy};

/// (label, program, shape the nest body stresses).
fn cases() -> Vec<(&'static str, dct_ir::Program)> {
    vec![
        ("copy_axpy_vpenta", dct_bench::programs::vpenta(64, 3)),
        ("muladd_lu", dct_bench::programs::lu(96)),
        ("sumk_stencil", dct_bench::programs::stencil(192, 2)),
        ("fused_adi", dct_bench::programs::adi(96, 2)),
        ("tape_tomcatv", dct_bench::programs::tomcatv(96, 2)),
    ]
}

fn seg_kernels(c: &mut Criterion) {
    for (label, prog) in cases() {
        let params = prog.default_params();
        let comp = Compiler::new(Strategy::Full);
        let compiled = comp.compile(&prog).unwrap();
        let mut opts = comp.sim_options(32, params.clone());
        opts.threads = 1;
        for (mode, kernels) in [("kernel", true), ("interp", false)] {
            opts.seg_kernels = kernels;
            let opts = opts.clone();
            let compiled = &compiled;
            c.bench_function(&format!("{label}_{mode}"), |b| {
                b.iter(|| {
                    let r = dct_spmd::simulate(
                        &compiled.program,
                        &compiled.decomposition,
                        &opts,
                    )
                    .expect("simulate");
                    black_box(r.cycles)
                })
            });
        }
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = seg_kernels
}
criterion_main!(benches);
