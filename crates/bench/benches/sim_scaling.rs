//! Intra-cell scaling of the sharded simulator engine: the fig6b LU
//! cell (the sweep's dominant single cell) swept across engine thread
//! counts 1..N. Thread 1 is the exact sequential walk; every other
//! count is bit-identical, so any cycle drift here is a bug, and any
//! wall-time regression at a fixed count is a scaling regression.
//!
//! The default size is scaled well below the paper's 512x512 so the
//! bench finishes quickly in CI; the absolute speedup is only
//! meaningful on a multi-core host (the determinism, measured cycles,
//! and per-thread trend are meaningful everywhere).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dct_core::{Compiler, Strategy};

fn sim_scaling(c: &mut Criterion) {
    // fig6b is LU at the paper's 1024 base size; 0.125 of it keeps one
    // Criterion iteration in the tens of milliseconds.
    let spec = dct_bench::figure("fig6b", 0.125).expect("fig6b exists");
    let params = spec.program.default_params();
    let comp = Compiler::new(Strategy::Full);
    let compiled = comp.compile(&spec.program).expect("fig6b compiles");

    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut counts = vec![1usize, 2, 4, 8];
    counts.retain(|&t| t == 1 || t <= host.max(4));

    let reference = comp
        .simulate_threads(&compiled, 32, &params, 1)
        .expect("reference run")
        .cycles;

    for threads in counts {
        c.bench_function(&format!("sim_scaling_lu_fig6b/{threads}"), |b| {
            b.iter(|| {
                let r = comp
                    .simulate_threads(&compiled, 32, &params, threads)
                    .expect("simulate");
                assert_eq!(r.cycles, reference, "threads={threads} diverged from sequential");
                black_box(r.cycles)
            })
        });
    }
}

criterion_group!(benches, sim_scaling);
criterion_main!(benches);
