//! End-to-end simulator throughput: raw `Machine::access` streams shaped
//! like the figure benchmarks (multi-array stencil bodies, not just
//! single-line hits) and full `Executor::run` on the 512x512 stencil —
//! the workload that dominates `repro table1` wall time.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dct_core::{Compiler, Strategy};
use dct_machine::{Machine, MachineConfig};

/// Interleaved accesses to five lines per iteration (a 5-point stencil
/// body): exercises the per-set MRU fast path rather than the single
/// last-line case.
fn stencil_shaped_accesses(c: &mut Criterion) {
    c.bench_function("access_stencil_body", |b| {
        let mut m = Machine::new(MachineConfig::dash(1));
        let mut j = 0u64;
        b.iter(|| {
            // a[i][j-1], a[i][j+1], a[i-1][j], a[i+1][j] reads + b[i][j] write,
            // column stride 4 KiB.
            let base = j * 8;
            let mut cost = 0;
            cost += m.access(0, base.wrapping_sub(8) & 0xffff_ffff, false);
            cost += m.access(0, base + 8, false);
            cost += m.access(0, base + 4096, false);
            cost += m.access(0, base + 8192, false);
            cost += m.access(0, (64 << 20) + base, true);
            j = (j + 1) % (1 << 18);
            black_box(cost)
        })
    });

    c.bench_function("access_sequential_stream", |b| {
        let mut m = Machine::new(MachineConfig::dash(1));
        let mut addr = 0u64;
        b.iter(|| {
            addr = (addr + 8) % (64 << 20);
            black_box(m.access(0, addr, false))
        })
    });
}

/// Full pipeline on the 512x512 stencil (fig8's workload), 32 processors.
fn executor_run(c: &mut Criterion) {
    let prog = dct_bench::programs::stencil(512, 1);
    let params = prog.default_params();
    for strategy in [Strategy::Base, Strategy::Full] {
        let comp = Compiler::new(strategy);
        let compiled = comp.compile(&prog).unwrap();
        let name = match strategy {
            Strategy::Base => "executor_stencil512_base",
            _ => "executor_stencil512_full",
        };
        c.bench_function(name, |b| {
            b.iter(|| black_box(comp.simulate(&compiled, 32, &params).expect("simulate").cycles))
        });
    }
    // Same workload with the memory profiler attached: tracks the
    // observation overhead (target <= 2x wall; cycles are unchanged).
    let comp = Compiler::new(Strategy::Full);
    let compiled = comp.compile(&prog).unwrap();
    let mut opts = comp.sim_options(32, params.clone());
    opts.profile = true;
    c.bench_function("executor_stencil512_full_profiled", |b| {
        b.iter(|| {
            let r = dct_spmd::simulate(&compiled.program, &compiled.decomposition, &opts)
                .expect("simulate");
            black_box(r.cycles)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = stencil_shaped_accesses, executor_run
}
criterion_main!(benches);
