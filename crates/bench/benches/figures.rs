//! One Criterion bench per paper figure/table: the full compile+simulate
//! pipeline at a small scale (P = 8), tracking end-to-end regression of
//! the exact code paths each experiment exercises.

use criterion::{criterion_group, criterion_main, Criterion};
use dct_bench::programs;
use dct_core::{Compiler, Strategy};
use dct_ir::Program;

fn bench_figure(c: &mut Criterion, id: &str, prog: Program) {
    let compiler = Compiler::new(Strategy::Full);
    let compiled = compiler.compile(&prog).unwrap();
    let params = prog.default_params();
    c.bench_function(id, |b| {
        b.iter(|| {
            let r = compiler.simulate(&compiled, 8, &params).expect("simulate");
            std::hint::black_box(r.cycles)
        })
    });
}

fn figures(c: &mut Criterion) {
    bench_figure(c, "fig4_vpenta", programs::vpenta(48, 3));
    bench_figure(c, "fig6_lu", programs::lu(48));
    bench_figure(c, "fig8_stencil", programs::stencil(64, 2));
    bench_figure(c, "fig10_adi", programs::adi(64, 2));
    bench_figure(c, "fig11_erlebacher", programs::erlebacher(24));
    bench_figure(c, "fig12_swm256", programs::swm256(65, 2));
    bench_figure(c, "fig13_tomcatv", programs::tomcatv(65, 2));
}

/// Table 1 is the whole suite under all three strategies.
fn table1(c: &mut Criterion) {
    c.bench_function("table1_summary", |b| {
        b.iter(|| {
            let rows = dct_bench::table1(4, 0.08);
            std::hint::black_box(rows.len())
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = figures, table1
}
criterion_main!(benches);
