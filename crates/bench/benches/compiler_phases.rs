//! Criterion benches of the compiler phases themselves (analysis and
//! code generation, no simulation): dependence analysis, parallelism
//! exposure, decomposition and SPMD codegen.

use criterion::{criterion_group, criterion_main, Criterion};
use dct_bench::programs;
use dct_core::{Compiler, Strategy};
use dct_dep::{analyze_nest, DepConfig};
use dct_spmd::{codegen, CostModel, SpmdOptions};

fn phases(c: &mut Criterion) {
    let prog = programs::tomcatv(257, 3);
    let cfg = DepConfig { nparams: prog.params.len(), param_min: 4 };

    c.bench_function("dependence_analysis_tomcatv", |b| {
        b.iter(|| {
            let deps: Vec<_> = prog.nests.iter().map(|n| analyze_nest(n, cfg)).collect();
            std::hint::black_box(deps.len())
        })
    });

    c.bench_function("full_compile_tomcatv", |b| {
        let compiler = Compiler::new(Strategy::Full);
        b.iter(|| {
            let compiled = compiler.compile(&prog).unwrap();
            std::hint::black_box(compiled.decomposition.grid_rank)
        })
    });

    c.bench_function("codegen_tomcatv_p32", |b| {
        let compiler = Compiler::new(Strategy::Full);
        let compiled = compiler.compile(&prog).unwrap();
        b.iter(|| {
            let sp = codegen(&compiled.program, &compiled.decomposition, &SpmdOptions {
                procs: 32,
                params: prog.default_params(),
                transform_data: true,
                barrier_elision: true,
                cost: CostModel::default(),
            }).unwrap();
            std::hint::black_box(sp.total_elements())
        })
    });

    // The most analysis-heavy program: LU's non-uniform references drive
    // the Fourier-Motzkin direction enumeration.
    let lu = programs::lu(256);
    c.bench_function("full_compile_lu", |b| {
        let compiler = Compiler::new(Strategy::Full);
        b.iter(|| std::hint::black_box(compiler.compile(&lu).unwrap().decomposition.grid_rank))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = phases
}
criterion_main!(benches);
