      PROGRAM ERLE
      PARAMETER (N = 12, NPASS = 3)
      REAL U(N,N,N), DUX(N,N,N), DUY(N,N,N), DUZ(N,N,N), TOT(N,N,N)
CDCT$ INIT
      DO 1 K = 1, N
      DO 1 J = 1, N
      DO 1 I = 1, N
    1 U(I,J,K) = 1.0 + I*0.01 + J*0.02 + K*0.03
CDCT$ INIT
      DO 2 K = 1, N
      DO 2 J = 1, N
      DO 2 I = 1, N
    2 DUX(I,J,K) = 0.0
CDCT$ INIT
      DO 3 K = 1, N
      DO 3 J = 1, N
      DO 3 I = 1, N
    3 DUY(I,J,K) = 0.0
CDCT$ INIT
      DO 4 K = 1, N
      DO 4 J = 1, N
      DO 4 I = 1, N
    4 DUZ(I,J,K) = 0.0
CDCT$ INIT
      DO 5 K = 1, N
      DO 5 J = 1, N
      DO 5 I = 1, N
    5 TOT(I,J,K) = 0.0
      DO 60 TIME = 1, NPASS
      DO 10 K = 1, N
      DO 10 J = 1, N
      DO 10 I = 2, N
   10 DUX(I,J,K) = (U(I,J,K)-U(I-1,J,K))*0.5 - DUX(I-1,J,K)*0.25
      DO 20 K = 1, N
      DO 20 J = 2, N
      DO 20 I = 1, N
   20 DUY(I,J,K) = (U(I,J,K)-U(I,J-1,K))*0.5 - DUY(I,J-1,K)*0.25
      DO 30 K = 2, N
      DO 30 J = 1, N
      DO 30 I = 1, N
   30 DUZ(I,J,K) = (U(I,J,K)-U(I,J,K-1))*0.5 - DUZ(I,J,K-1)*0.25
      DO 40 K = 1, N
      DO 40 J = 1, N
      DO 40 I = 1, N
   40 TOT(I,J,K) = DUX(I,J,K) + DUY(I,J,K) + DUZ(I,J,K)
   60 CONTINUE
      END
