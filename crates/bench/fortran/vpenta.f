      PROGRAM VPENTA
      PARAMETER (N = 16, NRHS = 3)
      REAL A(N,N), B(N,N), C(N,N), X(N,N), F(N,N,NRHS)
CDCT$ INIT
      DO 1 J = 1, N
      DO 1 I = 1, N
    1 A(I,J) = 0.1 + I * 0.001 + J * 0.002
CDCT$ INIT
      DO 2 J = 1, N
      DO 2 I = 1, N
    2 B(I,J) = 0.2 + I * 0.001 + J * 0.002
CDCT$ INIT
      DO 3 J = 1, N
      DO 3 I = 1, N
    3 C(I,J) = 4.0 + I * 0.001 + J * 0.002
CDCT$ INIT
      DO 4 J = 1, N
      DO 4 I = 1, N
    4 X(I,J) = 1.0 + I * 0.001 + J * 0.002
CDCT$ INIT
      DO 6 K = 1, NRHS
      DO 6 J = 1, N
      DO 6 I = 1, N
    6 F(I,J,K) = 1.0 + I * 0.01 + K
      DO 10 J = 1, N
      DO 10 I = 2, N
   10 X(I,J) = X(I,J) - A(I,J)*X(I-1,J)/C(I-1,J)
      DO 20 K = 1, NRHS
      DO 20 J = 1, N
      DO 20 I = 2, N
   20 F(I,J,K) = F(I,J,K) - B(I,J)*F(I-1,J,K)
      DO 40 K = 1, NRHS
      DO 40 J = 1, N
      DO 40 I = 1, N
   40 F(I,J,K) = F(I,J,K) / C(I,J)
      END
