      PROGRAM LU
      PARAMETER (N = 16)
      DOUBLE PRECISION A(N, N)
CDCT$ INIT
      DO 5 J = 1, N
      DO 5 I = 1, N
    5 A(I,J) = 1.0 / (I + J - 1.0) + 4.0
      DO 10 I1 = 1, N
      DO 10 I2 = I1+1, N
      A(I2,I1) = A(I2,I1) / A(I1,I1)
      DO 10 I3 = I1+1, N
      A(I2,I3) = A(I2,I3) - A(I2,I1)*A(I1,I3)
   10 CONTINUE
      END
