      PROGRAM STENCIL
      PARAMETER (N = 20, NSTEPS = 3)
      REAL A(N,N), B(N,N)
CDCT$ INIT
      DO 5 J = 1, N
      DO 5 I = 1, N
    5 B(I,J) = I * 0.01 + J * 0.02 + 1.0
CDCT$ INIT
      DO 6 J = 1, N
      DO 6 I = 1, N
    6 A(I,J) = 0.0
      DO 30 TIME = 1, NSTEPS
      DO 10 I1 = 2, N-1
      DO 10 I2 = 2, N-1
      A(I2,I1) = 0.2*(B(I2,I1)+B(I2-1,I1)+B(I2+1,I1)+B(I2,I1-1)+B(I2,I1+1))
   10 CONTINUE
      DO 20 I1 = 2, N-1
      DO 20 I2 = 2, N-1
      B(I2,I1) = A(I2,I1)
   20 CONTINUE
   30 CONTINUE
      END
