      PROGRAM SWM
      PARAMETER (N = 17, NSTEPS = 2)
      REAL U(N,N), V(N,N), P(N,N), CU(N,N), CV(N,N), Z(N,N), H(N,N)
CDCT$ INIT
      DO 1 J = 1, N
      DO 1 I = 1, N
    1 U(I,J) = 0.5 + I*0.001 + J*0.003
CDCT$ INIT
      DO 2 J = 1, N
      DO 2 I = 1, N
    2 V(I,J) = 0.4 + I*0.001 + J*0.003
CDCT$ INIT
      DO 3 J = 1, N
      DO 3 I = 1, N
    3 P(I,J) = 50.0 + I*0.001 + J*0.003
CDCT$ INIT
      DO 4 J = 1, N
      DO 4 I = 1, N
    4 CU(I,J) = 0.0
CDCT$ INIT
      DO 5 J = 1, N
      DO 5 I = 1, N
    5 CV(I,J) = 0.0
CDCT$ INIT
      DO 6 J = 1, N
      DO 6 I = 1, N
    6 Z(I,J) = 0.0
CDCT$ INIT
      DO 7 J = 1, N
      DO 7 I = 1, N
    7 H(I,J) = 0.0
      DO 300 TIME = 1, NSTEPS
      DO 100 J = 2, N-1
      DO 100 I = 2, N-1
      CU(I,J) = 0.5*(P(I,J)+P(I-1,J))*U(I,J)
      CV(I,J) = 0.5*(P(I,J)+P(I,J-1))*V(I,J)
      Z(I,J) = (V(I,J)-V(I-1,J)+U(I,J)-U(I,J-1))/(P(I,J)+1.0)
      H(I,J) = P(I,J) + 0.25*(U(I,J)*U(I,J)+V(I,J)*V(I,J))
  100 CONTINUE
      DO 200 J = 2, N-1
      DO 200 I = 2, N-1
      U(I,J) = U(I,J) + 0.125*(Z(I,J)+Z(I,J-1))*(CV(I,J)+CV(I-1,J))
     - - 0.01*(H(I,J)-H(I-1,J))
      V(I,J) = V(I,J) - 0.125*(Z(I,J)+Z(I-1,J))*(CU(I,J)+CU(I,J-1))
     - - 0.01*(H(I,J)-H(I,J-1))
      P(I,J) = P(I,J) - 0.02*(CU(I,J)-CU(I-1,J)+CV(I,J)-CV(I,J-1))
  200 CONTINUE
  300 CONTINUE
      END
