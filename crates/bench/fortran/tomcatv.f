      PROGRAM TOMCATV
      PARAMETER (N = 17, NSTEPS = 2)
      REAL X(N,N), Y(N,N), RX(N,N), RY(N,N), AA(N,N), DD(N,N)
CDCT$ INIT
      DO 1 J = 1, N
      DO 1 I = 1, N
    1 X(I,J) = 1.0 + I*0.002 + J*0.001
CDCT$ INIT
      DO 2 J = 1, N
      DO 2 I = 1, N
    2 Y(I,J) = 2.0 + I*0.002 + J*0.001
CDCT$ INIT
      DO 3 J = 1, N
      DO 3 I = 1, N
    3 RX(I,J) = 0.0
CDCT$ INIT
      DO 4 J = 1, N
      DO 4 I = 1, N
    4 RY(I,J) = 0.0
CDCT$ INIT
      DO 5 J = 1, N
      DO 5 I = 1, N
    5 AA(I,J) = -0.5 + I*0.002 + J*0.001
CDCT$ INIT
      DO 6 J = 1, N
      DO 6 I = 1, N
    6 DD(I,J) = 4.0 + I*0.002 + J*0.001
      DO 90 TIME = 1, NSTEPS
      DO 10 J = 2, N-1
      DO 10 I = 2, N-1
      RX(I,J) = X(I+1,J)+X(I-1,J)+X(I,J+1)+X(I,J-1)-4.0*X(I,J)
      RY(I,J) = Y(I+1,J)+Y(I-1,J)+Y(I,J+1)+Y(I,J-1)-4.0*Y(I,J)
   10 CONTINUE
      DO 20 J = 2, N-1
      DO 20 I = 2, N-1
      DD(I,J) = DD(I,J) - AA(I,J)*AA(I,J-1)/DD(I,J-1)
      RX(I,J) = RX(I,J) - AA(I,J)*RX(I,J-1)/DD(I,J-1)
      RY(I,J) = RY(I,J) - AA(I,J)*RY(I,J-1)/DD(I,J-1)
   20 CONTINUE
      DO 30 J = 2, N-1
      DO 30 I = 2, N-1
      X(I,J) = X(I,J) + RX(I,J)/DD(I,J)
      Y(I,J) = Y(I,J) + RY(I,J)/DD(I,J)
   30 CONTINUE
   90 CONTINUE
      END
