      PROGRAM ADI
      PARAMETER (N = 16, NSTEPS = 2)
      REAL X(N,N), A(N,N), B(N,N)
CDCT$ INIT
      DO 3 J = 1, N
      DO 3 I = 1, N
    3 X(I,J) = 1.0 + I * 0.001 + J * 0.002
CDCT$ INIT
      DO 4 J = 1, N
      DO 4 I = 1, N
    4 A(I,J) = 0.3 + I * 0.001 + J * 0.002
CDCT$ INIT
      DO 5 J = 1, N
      DO 5 I = 1, N
    5 B(I,J) = 2.0 + I * 0.001 + J * 0.002
      DO 30 TIME = 1, NSTEPS
      DO 10 I1 = 1, N
      DO 10 I2 = 2, N
      X(I2,I1) = X(I2,I1) - X(I2-1,I1)*A(I2,I1)/B(I2-1,I1)
      B(I2,I1) = B(I2,I1) - A(I2,I1)*A(I2,I1)/B(I2-1,I1)
   10 CONTINUE
      DO 20 I1 = 2, N
      DO 20 I2 = 1, N
      X(I2,I1) = X(I2,I1) - X(I2,I1-1)*A(I2,I1)/B(I2,I1-1)
      B(I2,I1) = B(I2,I1) - A(I2,I1)*A(I2,I1)/B(I2,I1-1)
   20 CONTINUE
   30 CONTINUE
      END
