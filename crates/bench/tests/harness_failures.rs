//! Failure tolerance of the Table 1 sweep harness: a panicking worker
//! cell becomes a failed cell in its row — the sweep still completes and
//! every other cell keeps its number.

use dct_bench::harness::{render_table1, table1_parallel_with_hook, ThreadBudget};

#[test]
fn injected_panicking_cell_does_not_poison_the_sweep() {
    // Crash the "full" cell (k = 3) of the stencil row only.
    let hook = |bench: &str, k: usize| {
        if bench == "stencil" && k == 3 {
            panic!("injected failure for the fault-tolerance test");
        }
    };
    let rows = table1_parallel_with_hook(4, 0.05, ThreadBudget::clamp(2, Some(2)), Some(&hook));
    assert!(!rows.is_empty());

    let stencil = rows.iter().find(|r| r.program == "stencil").unwrap();
    assert!(stencil.base_speedup.is_some(), "untouched cell survives");
    assert!(stencil.full_speedup.is_none(), "crashed cell is a failed cell");
    assert!(
        stencil.notes.iter().any(|n| n.contains("injected failure")),
        "the panic message is preserved in the row notes: {:?}",
        stencil.notes
    );

    // Every other row is fully populated.
    for r in rows.iter().filter(|r| r.program != "stencil") {
        assert!(r.base_speedup.is_some(), "{}: {:?}", r.program, r.notes);
        assert!(r.full_speedup.is_some(), "{}: {:?}", r.program, r.notes);
    }

    // The renderer prints the failed cell and its note.
    let table = render_table1(&rows, 4);
    assert!(table.contains("fail"), "{table}");
    assert!(table.contains("injected failure"), "{table}");
}
