//! The content-addressed cache under fire: warm runs must execute zero
//! cells yet stay bit-identical, injected `cache-write-io` faults must
//! heal through the retry ladder without changing a single bit, and a
//! bit-flipped store entry must be detected (crc64), quarantined, and
//! recomputed — never trusted.

use dct_bench::chaos::{run_chaos, ChaosConfig, Fault, FaultInjector, FaultPlan, FaultSite};
use dct_bench::sweep::{run_sweep_supervised, render_sweep, CellOutcome, SweepConfig};
use dct_bench::ResultStore;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

struct Scratch(PathBuf);

impl Scratch {
    fn new() -> Scratch {
        let d = std::env::temp_dir().join(format!(
            "dct-cache-chaos-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        Scratch(d)
    }

    fn path(&self, sub: &str) -> PathBuf {
        self.0.join(sub)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn small_sweep(out_dir: PathBuf, store: Option<Arc<ResultStore>>) -> SweepConfig {
    let mut cfg = SweepConfig::new(4, 0.05, out_dir);
    cfg.only = Some(vec!["stencil".to_string()]);
    cfg.threads = 2;
    cfg.retry.backoff_base_ms = 1;
    cfg.cache = store;
    cfg
}

/// The acceptance criterion in miniature: a second sweep against a warm
/// store executes zero cells (hit counter == cell count) and renders a
/// byte-identical table. Distinct checkpoint dirs prove the cache — not
/// resume — is serving.
#[test]
fn warm_cache_executes_zero_cells_bit_identical() {
    let dir = Scratch::new();
    let store = Arc::new(ResultStore::open(dir.path("cache"), None).unwrap());

    let cold = run_sweep_supervised(&small_sweep(dir.path("run1"), Some(store.clone()))).unwrap();
    assert_eq!(cold.cells.len(), 4, "stencil: seq + three strategies");
    assert_eq!(cold.cache_hits, 0, "first run, store is empty");
    assert_eq!(cold.executed, 4, "every cell computes cold");

    let warm = run_sweep_supervised(&small_sweep(dir.path("run2"), Some(store.clone()))).unwrap();
    assert_eq!(warm.executed, 0, "warm run must not execute anything");
    assert_eq!(warm.cache_hits, 4, "every cell served from the store");
    assert_eq!(
        render_sweep(&warm.cells, 4, 0.05),
        render_sweep(&cold.cells, 4, 0.05),
        "warm table must be byte-identical to the cold one"
    );
    // Bit-level, not just text-level, identity.
    for (c, w) in cold.cells.iter().zip(&warm.cells) {
        assert_eq!(c, w, "cached cell diverges");
    }
}

/// Changing an option that is *in* the key (race_check) must miss; the
/// bit-identity knobs (threads) must still hit.
#[test]
fn cache_keys_respect_observers_but_not_threads() {
    let dir = Scratch::new();
    let store = Arc::new(ResultStore::open(dir.path("cache"), None).unwrap());
    let base = run_sweep_supervised(&small_sweep(dir.path("a"), Some(store.clone()))).unwrap();
    assert_eq!(base.executed, 4);

    // Different thread count: bit-identical by contract, so it hits.
    let mut cfg = small_sweep(dir.path("b"), Some(store.clone()));
    cfg.threads = 1;
    let rethreaded = run_sweep_supervised(&cfg).unwrap();
    assert_eq!(rethreaded.executed, 0, "threads are excluded from the key");
    assert_eq!(rethreaded.cache_hits, 4);

    // Race detection joins the fingerprint, so it must be keyed.
    let mut cfg = small_sweep(dir.path("c"), Some(store.clone()));
    cfg.race_check = true;
    let raced = run_sweep_supervised(&cfg).unwrap();
    assert_eq!(raced.executed, 4, "race_check is part of the key");
}

/// `cache-write-io`: a failing store insert is treated exactly like a
/// checkpoint-write failure — the attempt retries down the ladder and
/// the converged sweep is bit-identical to a fault-free cached sweep.
#[test]
fn cache_write_io_heals_bit_identical() {
    let clean_dir = Scratch::new();
    let chaos_dir = Scratch::new();
    let clean_store = Arc::new(ResultStore::open(clean_dir.path("cache"), None).unwrap());
    let clean =
        run_sweep_supervised(&small_sweep(clean_dir.path("out"), Some(clean_store))).unwrap();

    let chaos_store = Arc::new(ResultStore::open(chaos_dir.path("cache"), None).unwrap());
    let mut cfg = small_sweep(chaos_dir.path("out"), Some(chaos_store.clone()));
    let plan = FaultPlan {
        seed: 0,
        faults: vec![
            Fault { site: FaultSite::CacheWriteIo, occurrence: 0 },
            Fault { site: FaultSite::CacheWriteIo, occurrence: 2 },
        ],
    };
    let inj = Arc::new(FaultInjector::new(&plan));
    cfg.injector = Some(inj.clone());
    let chaos = run_sweep_supervised(&cfg).unwrap();

    assert!(inj.unfired().is_empty(), "cache faults must arrive: {:?}", inj.unfired());
    assert!(chaos.retries >= 2, "each failed insert must cost a retry: {}", chaos.retries);
    for c in &chaos.cells {
        assert!(matches!(c.outcome, CellOutcome::Cycles(_)), "must recover: {c:?}");
    }
    let diffs = dct_bench::chaos::diff_sweeps(&clean.cells, &chaos.cells);
    assert!(diffs.is_empty(), "cache-fault recovery changed results:\n{diffs:#?}");

    // The healed store is fully warm: a rerun executes nothing.
    let warm =
        run_sweep_supervised(&small_sweep(chaos_dir.path("out2"), Some(chaos_store))).unwrap();
    assert_eq!(warm.executed, 0, "healed store must serve every cell");
}

/// A bit-flipped cache entry is detected by the crc64 envelope check,
/// moved to `corrupt/`, and the cell recomputes — bit-identical.
#[test]
fn corrupt_cache_entry_is_quarantined_and_recomputed() {
    let dir = Scratch::new();
    let store = Arc::new(ResultStore::open(dir.path("cache"), None).unwrap());
    let cold = run_sweep_supervised(&small_sweep(dir.path("a"), Some(store.clone()))).unwrap();

    // Flip one bit in one stored entry (not in `corrupt/`).
    let mut flipped = None;
    for shard in std::fs::read_dir(dir.path("cache")).unwrap() {
        let shard = shard.unwrap().path();
        if !shard.is_dir() || shard.file_name().is_some_and(|n| n == "corrupt") {
            continue;
        }
        if let Some(f) = std::fs::read_dir(&shard).unwrap().next() {
            let f = f.unwrap().path();
            let mut bytes = std::fs::read(&f).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x40;
            std::fs::write(&f, bytes).unwrap();
            flipped = Some(f);
            break;
        }
    }
    let flipped = flipped.expect("the cold run must have populated the store");

    let rerun = run_sweep_supervised(&small_sweep(dir.path("b"), Some(store.clone()))).unwrap();
    let (_, _, _, _, corrupt) = store.stats().snapshot();
    assert_eq!(corrupt, 1, "the flipped entry must be detected exactly once");
    assert_eq!(rerun.executed, 1, "only the corrupted cell recomputes");
    assert_eq!(rerun.cache_hits, 3, "intact entries still serve");
    let quarantined = dir.path("cache").join("corrupt").join(flipped.file_name().unwrap());
    assert!(quarantined.exists(), "flipped entry must be preserved in corrupt/");
    // The recompute re-inserts a fresh (valid) entry at the same path.
    assert!(flipped.exists(), "recomputed entry must repopulate the store");
    let warm = run_sweep_supervised(&small_sweep(dir.path("c"), Some(store.clone()))).unwrap();
    assert_eq!(warm.executed, 0, "the repopulated store is fully warm again");
    for (c, r) in cold.cells.iter().zip(&rerun.cells) {
        assert_eq!(c, r, "recomputed cell diverges from the original");
    }
}

/// `repro chaos --cache` end to end: both sweeps get (separate) stores,
/// the planned compute faults still fire, and the converged result is
/// bit-identical.
#[test]
fn chaos_with_cache_converges() {
    let dir = Scratch::new();
    let mut cfg = ChaosConfig::new(42, 4, dir.path("chaos"));
    cfg.procs = 4;
    cfg.scale = 0.05;
    cfg.threads = 2;
    cfg.only = Some(vec!["stencil".to_string()]);
    cfg.stuck_wall_secs = 0.3;
    cfg.cache = true;
    let rep = run_chaos(&cfg).unwrap();
    assert!(rep.identical(), "cached chaos diverged:\n{:#?}", rep.diffs);
    assert!(!rep.fired.is_empty(), "plan must exercise the executor: {:?}", rep.plan);
    assert!(dir.path("chaos").join("cache-clean").exists());
    assert!(dir.path("chaos").join("cache-chaos").exists());
}
