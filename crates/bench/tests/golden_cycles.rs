//! Golden cycle counts for the whole paper suite, captured before the
//! memory profiler existed: with `SimOptions::profile` off (the default),
//! every benchmark must simulate to bit-identical cycles — the probe
//! plumbing through `Machine::access` must be invisible. With the
//! profiler on, cycles must *still* be identical (it is a pure observer)
//! and the profile must obey the conservation law
//! `cold + capacity + conflict + coherence == misses` while agreeing with
//! the machine's own aggregate statistics.

use dct_core::{Compiler, Strategy};

/// `(benchmark, strategy, cycles)` at scale 0.25 on 8 processors,
/// captured at commit 3ba7419 (pre-profiler).
const GOLDEN: &[(&str, Strategy, u64)] = &[
    ("vpenta", Strategy::Base, 125222),
    ("vpenta", Strategy::CompDecomp, 47142),
    ("vpenta", Strategy::Full, 49410),
    ("lu", Strategy::Base, 1011609),
    ("lu", Strategy::CompDecomp, 326881),
    ("lu", Strategy::Full, 339608),
    ("stencil", Strategy::Base, 662094),
    ("stencil", Strategy::CompDecomp, 730068),
    ("stencil", Strategy::Full, 827860),
    ("adi", Strategy::Base, 571072),
    ("adi", Strategy::CompDecomp, 301544),
    ("adi", Strategy::Full, 301544),
    ("erlebacher", Strategy::Base, 188372),
    ("erlebacher", Strategy::CompDecomp, 333076),
    ("erlebacher", Strategy::Full, 286972),
    ("swm256", Strategy::Base, 796628),
    ("swm256", Strategy::CompDecomp, 874038),
    ("swm256", Strategy::Full, 1089526),
    ("tomcatv", Strategy::Base, 1131892),
    ("tomcatv", Strategy::CompDecomp, 716396),
    ("tomcatv", Strategy::Full, 752508),
];

#[test]
fn suite_cycles_bit_identical_to_pre_profiler_golden() {
    for b in dct_bench::programs::suite(0.25) {
        let params = b.program.default_params();
        for strategy in Strategy::ALL {
            let c = Compiler::new(strategy);
            let compiled = c.compile(&b.program).unwrap();
            let r = c.simulate(&compiled, 8, &params).unwrap();
            let golden = GOLDEN
                .iter()
                .find(|(n, s, _)| *n == b.name && *s == strategy)
                .unwrap_or_else(|| panic!("no golden entry for {} {strategy:?}", b.name));
            assert_eq!(
                r.cycles, golden.2,
                "{} {strategy:?}: cycles drifted from pre-profiler golden",
                b.name
            );
            assert!(r.mem_profile.is_none(), "profile off must not attach a MemProfile");
        }
    }
}

#[test]
fn profiled_runs_are_cycle_identical_and_conserve_misses() {
    for b in dct_bench::programs::suite(0.25) {
        let params = b.program.default_params();
        for strategy in Strategy::ALL {
            let c = Compiler::new(strategy);
            let compiled = c.compile(&b.program).unwrap();
            let plain = c.simulate(&compiled, 8, &params).unwrap();
            let mut opts = c.sim_options(8, params.clone());
            opts.profile = true;
            let profiled =
                dct_spmd::simulate(&compiled.program, &compiled.decomposition, &opts).unwrap();
            assert_eq!(
                plain.cycles, profiled.cycles,
                "{} {strategy:?}: profiler perturbed cycles",
                b.name
            );
            assert_eq!(plain.checksum, profiled.checksum, "{} {strategy:?}", b.name);
            let prof = profiled.mem_profile.expect("profile on must attach a MemProfile");
            let t = prof.total();
            assert_eq!(
                t.classified(),
                t.misses(),
                "{} {strategy:?}: classification must partition misses",
                b.name
            );
            // The profile's aggregate view must agree with the machine's
            // own statistics exactly.
            let s = profiled.stats.total();
            assert_eq!(t.accesses, s.accesses, "{} {strategy:?}", b.name);
            assert_eq!(t.l1_hits, s.l1_hits, "{} {strategy:?}", b.name);
            assert_eq!(t.l2_hits, s.l2_hits, "{} {strategy:?}", b.name);
            assert_eq!(t.local_mem, s.local_mem, "{} {strategy:?}", b.name);
            assert_eq!(t.remote_mem, s.remote_mem, "{} {strategy:?}", b.name);
            assert_eq!(t.remote_dirty, s.remote_dirty, "{} {strategy:?}", b.name);
            assert_eq!(t.invalidations, s.invalidations_received, "{} {strategy:?}", b.name);
            assert_eq!(t.mem_cycles, s.mem_cycles, "{} {strategy:?}", b.name);
        }
    }
}
