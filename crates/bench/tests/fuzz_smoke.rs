//! Bounded differential fuzz run, wired into tier-1 CI: random affine
//! programs through the whole pipeline under every strategy, processor
//! count and folding — no panics, bit-exact results, race-free schedules,
//! and (with the memory profiler attached to every simulation) exactly
//! conserved miss classifications.

#[test]
fn fuzz_smoke() {
    let report = dct_bench::fuzz::run_fuzz(0xDC7_0001, 256);
    println!("fuzz: {} cases, {} simulations", report.cases, report.sims);
    assert_eq!(report.cases, 256);
    // Every case simulates each strategy at several processor counts; if
    // this collapses, the harness is silently skipping configurations.
    assert!(
        report.sims >= report.cases * 12,
        "only {} simulations across {} cases",
        report.sims,
        report.cases
    );
    assert!(
        report.failures.is_empty(),
        "{} differential fuzz failures:\n{}",
        report.failures.len(),
        report.failures.join("\n")
    );
}
