//! The benchmark suite from FORTRAN source: every `.f` file in
//! `crates/bench/fortran/` must parse, lower, and compile to the same
//! Table 1 decomposition as the IR-built suite, and execute identically
//! across strategies and processor counts.

use dct_core::{Compiler, Strategy};
use dct_frontend::parse_fortran;

fn load(name: &str) -> dct_core::ir::Program {
    let path = format!("{}/fortran/{name}.f", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    parse_fortran(&src).unwrap_or_else(|e| panic!("{name}.f: {e}"))
}

fn hpf_all(prog: &dct_core::ir::Program) -> Vec<String> {
    let c = Compiler::new(Strategy::Full).compile(prog).unwrap();
    c.decomposition.hpf_all(&c.program)
}

#[test]
fn lu_f_matches_table1() {
    let all = hpf_all(&load("lu"));
    assert_eq!(all, vec!["A(*, CYCLIC)"]);
}

#[test]
fn stencil_f_matches_table1() {
    let all = hpf_all(&load("stencil"));
    assert!(all.contains(&"A(BLOCK, BLOCK)".to_string()), "{all:?}");
}

#[test]
fn adi_f_matches_table1() {
    let prog = load("adi");
    let c = Compiler::new(Strategy::Full).compile(&prog).unwrap();
    let all = c.decomposition.hpf_all(&c.program);
    assert!(all.contains(&"X(*, BLOCK)".to_string()), "{all:?}");
    assert!(c.decomposition.comp.iter().any(|cd| cd.pipeline_level.is_some()));
}

#[test]
fn vpenta_f_matches_table1() {
    let all = hpf_all(&load("vpenta"));
    assert!(all.contains(&"F(*, BLOCK, *)".to_string()), "{all:?}");
    assert!(all.contains(&"A(*, BLOCK)".to_string()), "{all:?}");
}

#[test]
fn erlebacher_f_matches_table1() {
    let all = hpf_all(&load("erlebacher"));
    assert!(all.contains(&"U(replicated)".to_string()), "{all:?}");
    assert!(all.contains(&"DUX(*, *, BLOCK)".to_string()), "{all:?}");
    assert!(all.contains(&"DUZ(*, BLOCK, *)".to_string()), "{all:?}");
}

#[test]
fn swm256_f_matches_table1() {
    let all = hpf_all(&load("swm256"));
    assert!(all.contains(&"P(BLOCK, BLOCK)".to_string()), "{all:?}");
}

#[test]
fn tomcatv_f_matches_table1() {
    let all = hpf_all(&load("tomcatv"));
    assert!(all.contains(&"AA(BLOCK, *)".to_string()), "{all:?}");
}

/// Every FORTRAN benchmark computes identical values across strategies and
/// processor counts.
#[test]
fn fortran_suite_deterministic() {
    for name in ["lu", "stencil", "adi", "vpenta", "erlebacher", "swm256", "tomcatv"] {
        let prog = load(name);
        let run = |strategy: Strategy, procs: usize| {
            let c = Compiler::new(strategy);
            let compiled = c.compile(&prog).unwrap();
            let opts = c.sim_options(procs, prog.default_params());
            dct_core::spmd::simulate_with_values(
                &compiled.program,
                &compiled.decomposition,
                &opts,
            ).unwrap()
            .1
        };
        let reference = run(Strategy::Base, 1);
        for strategy in Strategy::ALL {
            for procs in [3usize, 8] {
                let got = run(strategy, procs);
                for (x, (a, b)) in reference.iter().zip(&got).enumerate() {
                    for (k, (p, q)) in a.iter().zip(b).enumerate() {
                        assert!(
                            p == q,
                            "{name}.f {} P={procs}: array {x} elem {k}: {p} != {q}",
                            strategy.label()
                        );
                    }
                }
            }
        }
    }
}
