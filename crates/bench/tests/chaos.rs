//! The chaos oracle end to end: a sweep bombarded with deterministic
//! injected faults — worker panics, checkpoint IO errors, torn temp
//! files, bit-flipped checkpoints, allocation-cap hits, stuck cells,
//! whole-sweep kills — must converge, through retries, watchdog cancels,
//! quarantines, and restarts, to results **bit-identical** to a
//! fault-free sweep. Self-healing that changes answers is not healing.

use dct_bench::chaos::{
    run_chaos, ChaosConfig, Fault, FaultInjector, FaultPlan, FaultSite,
};
use dct_bench::sweep::{run_sweep_supervised, CellOutcome, SweepConfig};
use dct_core::{Compiler, Strategy};
use dct_ir::CancelToken;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

struct Scratch(PathBuf);

impl Scratch {
    fn new() -> Scratch {
        let d = std::env::temp_dir().join(format!(
            "dct-chaos-test-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        Scratch(d)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn small_chaos(dir: &Scratch, seed: u64, faults: usize) -> ChaosConfig {
    let mut cfg = ChaosConfig::new(seed, faults, dir.0.clone());
    cfg.procs = 4;
    cfg.scale = 0.05;
    cfg.threads = 2;
    cfg.only = Some(vec!["stencil".to_string()]);
    cfg.race_check = true;
    cfg.stuck_wall_secs = 0.3;
    cfg
}

/// The tentpole oracle: seeded fault schedule, injected kills and
/// restarts, and the converged result must be bit-identical (cycles,
/// checksum bits, race-report fingerprints) to the fault-free sweep.
#[test]
fn chaos_sweep_converges_bit_identical() {
    let dir = Scratch::new();
    let cfg = small_chaos(&dir, 42, 6);
    let rep = run_chaos(&cfg).unwrap();
    assert!(
        rep.fired.len() >= 3,
        "seed 42 must actually exercise the executor; fired only {:?}",
        rep.fired
    );
    assert_eq!(rep.clean.cells.len(), 4, "stencil: seq + three strategies");
    assert_eq!(rep.chaos.cells.len(), 4, "chaos sweep must converge on all cells");
    for c in &rep.chaos.cells {
        assert!(
            matches!(c.outcome, CellOutcome::Cycles(_)),
            "every injected fault is transient, so every cell must recover: {c:?}"
        );
    }
    assert!(
        rep.identical(),
        "chaos sweep diverged from the fault-free sweep:\n{:#?}",
        rep.diffs
    );
    // Completed cells carry the bit-identity payload.
    for c in &rep.clean.cells {
        assert!(c.checksum_bits.is_some(), "{c:?}");
        assert!(c.fingerprint.is_some(), "{c:?}");
    }
}

/// Same seed, same faults, same places: the chaos harness itself is
/// deterministic.
#[test]
fn chaos_is_deterministic_across_runs() {
    let d1 = Scratch::new();
    let d2 = Scratch::new();
    let r1 = run_chaos(&small_chaos(&d1, 7, 4)).unwrap();
    let r2 = run_chaos(&small_chaos(&d2, 7, 4)).unwrap();
    assert_eq!(r1.plan, r2.plan);
    let sites1: Vec<_> = r1.fired.iter().map(|f| (f.site, f.occurrence)).collect();
    let sites2: Vec<_> = r2.fired.iter().map(|f| (f.site, f.occurrence)).collect();
    assert_eq!(sites1, sites2, "fired faults must be identical run to run");
    assert_eq!(r1.incarnations, r2.incarnations);
    assert!(r1.identical() && r2.identical());
}

/// A pre-fired cancellation token aborts the simulation at its first
/// sync-point boundary and surfaces as a structured Cancelled error —
/// the mechanism the sweep watchdog uses to kill stuck cells.
#[test]
fn cancel_token_aborts_simulation_as_structured_error() {
    let prog = dct_bench::programs::suite(0.05)
        .into_iter()
        .find(|b| b.name == "stencil")
        .expect("stencil in suite")
        .program;
    let c = Compiler::new(Strategy::Full);
    let compiled = c.compile(&prog).unwrap();
    let params = prog.default_params();

    let token = CancelToken::new();
    token.cancel();
    let err = c
        .simulate_supervised(&compiled, 4, &params, 2, token)
        .expect_err("a cancelled run must not return a result");
    assert!(err.is_cancelled(), "wrong error kind: {err}");

    // An un-fired token changes nothing: the run completes and matches
    // an unsupervised run bit for bit.
    let free = c.simulate_supervised(&compiled, 4, &params, 2, CancelToken::new()).unwrap();
    let plain = c.simulate_threads(&compiled, 4, &params, 2).unwrap();
    assert_eq!(free.cycles, plain.cycles);
    assert_eq!(free.checksum.to_bits(), plain.checksum.to_bits());
}

/// A cell that fails on every rung of the ladder is quarantined with the
/// last reason, the sweep keeps going, and resume retries the cell.
#[test]
fn repeated_failures_quarantine_the_cell_and_resume_retries() {
    let dir = Scratch::new();
    let mut cfg = SweepConfig::new(4, 0.05, dir.0.clone());
    cfg.only = Some(vec!["stencil".to_string()]);
    cfg.threads = 2;
    cfg.retry.max_attempts = 3;
    cfg.retry.backoff_base_ms = 1;
    // Panic the worker on its first three arrivals: exactly the first
    // cell's three attempts.
    let plan = FaultPlan {
        seed: 0,
        faults: (0..3).map(|i| Fault { site: FaultSite::WorkerPanic, occurrence: i }).collect(),
    };
    cfg.injector = Some(Arc::new(FaultInjector::new(&plan)));

    let rep = run_sweep_supervised(&cfg).unwrap();
    assert_eq!(rep.quarantined, 1, "first cell must exhaust the ladder");
    assert_eq!(rep.retries, 2, "two retries before the third strike");
    let seq = rep.cells.iter().find(|c| c.kind == "seq").unwrap();
    match &seq.outcome {
        CellOutcome::Quarantined(reason) => {
            assert!(reason.contains("injected: worker panic"), "reason lost: {reason}");
        }
        o => panic!("expected quarantine, got {o:?}"),
    }
    // The other cells were unaffected by the quarantine.
    for c in rep.cells.iter().filter(|c| c.kind != "seq") {
        assert!(matches!(c.outcome, CellOutcome::Cycles(_)), "{c:?}");
    }

    // Resume with the faults exhausted: the quarantined cell recovers.
    cfg.resume = true;
    let rep = run_sweep_supervised(&cfg).unwrap();
    assert_eq!(rep.quarantined, 0);
    let seq = rep.cells.iter().find(|c| c.kind == "seq").unwrap();
    assert!(matches!(seq.outcome, CellOutcome::Cycles(_)), "{seq:?}");
}

/// Native-backend fault sites: a native worker panic and a stuck native
/// worker (recovered by the watchdog) both fail the attempt, the retry
/// ladder heals the cell, and the converged sweep is bit-identical to a
/// fault-free sweep with the same native cross-check on.
#[test]
fn native_faults_heal_bit_identical() {
    let clean_dir = Scratch::new();
    let chaos_dir = Scratch::new();
    let mk = |dir: &Scratch| {
        let mut cfg = SweepConfig::new(4, 0.05, dir.0.clone());
        cfg.only = Some(vec!["stencil".to_string()]);
        cfg.threads = 2;
        cfg.retry.backoff_base_ms = 1;
        cfg.stuck_wall_secs = Some(0.3);
        cfg.native_check = true;
        cfg
    };

    let clean = run_sweep_supervised(&mk(&clean_dir)).unwrap();
    for c in &clean.cells {
        assert!(
            matches!(c.outcome, CellOutcome::Cycles(_)),
            "native cross-check must pass fault-free: {c:?}"
        );
    }

    let mut cfg = mk(&chaos_dir);
    let plan = FaultPlan {
        seed: 0,
        faults: vec![
            Fault { site: FaultSite::NativeWorkerPanic, occurrence: 0 },
            Fault { site: FaultSite::NativeStuck, occurrence: 1 },
        ],
    };
    let inj = Arc::new(FaultInjector::new(&plan));
    cfg.injector = Some(inj.clone());
    let chaos = run_sweep_supervised(&cfg).unwrap();

    assert!(inj.unfired().is_empty(), "both native faults must arrive: {:?}", inj.unfired());
    assert!(chaos.retries >= 2, "each native fault must cost a retry: {}", chaos.retries);
    assert!(chaos.cancelled >= 1, "the stuck native worker must trip the watchdog");
    for c in &chaos.cells {
        assert!(
            matches!(c.outcome, CellOutcome::Cycles(_)),
            "native faults are transient, every cell must recover: {c:?}"
        );
    }
    let diffs = dct_bench::chaos::diff_sweeps(&clean.cells, &chaos.cells);
    assert!(diffs.is_empty(), "native-fault recovery changed results:\n{diffs:#?}");
}

/// An injected whole-sweep kill stops the run mid-way with `killed` set;
/// a resume finishes the remaining cells without recomputing done ones.
#[test]
fn injected_kill_is_survived_by_resume() {
    let dir = Scratch::new();
    let mut cfg = SweepConfig::new(4, 0.05, dir.0.clone());
    cfg.only = Some(vec!["stencil".to_string()]);
    cfg.threads = 2;
    let plan = FaultPlan {
        seed: 0,
        faults: vec![Fault { site: FaultSite::KillSweep, occurrence: 1 }],
    };
    cfg.injector = Some(Arc::new(FaultInjector::new(&plan)));

    let rep = run_sweep_supervised(&cfg).unwrap();
    assert!(rep.killed, "the kill must be reported");
    assert_eq!(rep.cells.len(), 2, "killed after the second cell");

    cfg.resume = true;
    let rep = run_sweep_supervised(&cfg).unwrap();
    assert!(!rep.killed);
    assert_eq!(rep.cells.len(), 4, "resume completes the sweep");
    for c in &rep.cells {
        assert!(matches!(c.outcome, CellOutcome::Cycles(_)), "{c:?}");
    }
}
