//! The paper's three signature diagnoses, reproduced as machine-checked
//! assertions over `repro explain` profiles instead of prose:
//!
//! (a) stencil under the 2-D computation decomposition alone suffers
//!     false-sharing-dominated coherence misses — non-contiguous block
//!     boundaries slice cache lines between processors — and the data
//!     transformation eliminates them (>10x drop);
//! (b) vpenta's untransformed layout (every array a 64 KB power-of-2
//!     allocation, so corresponding elements of different arrays collide
//!     in the direct-mapped L1) shows conflict misses that *spike* as P
//!     grows and partitions narrow, which the data transformation removes;
//! (c) LU at P=32 columns hits the power-of-2 conflict pathology —
//!     cyclically-owned columns stride the direct-mapped cache in lockstep
//!     — so conflict misses dwarf P=31's, while the strip-mined layout
//!     restores parity between the two processor counts.
//!
//! Each test profiles only the strategies the claim needs
//! (`explain_strategies`), because the Base cells at full scale are far
//! slower than the claims under test.

use dct_bench::explain_strategies;
use dct_core::Strategy;
use dct_ir::MemRow;

fn total_of(bench: &str, scale: f64, procs: usize, strategy: Strategy) -> MemRow {
    let r = explain_strategies(bench, scale, procs, &[strategy])
        .unwrap_or_else(|| panic!("{bench} is a suite benchmark"));
    r.profile_of(strategy)
        .unwrap_or_else(|| panic!("{bench} {strategy:?} cell must run"))
        .total()
}

/// (a) Stencil: comp-decomp's coherence misses are false-sharing
/// dominated; the data transformation drops false sharing >10x (to zero
/// at this size: contiguous per-processor blocks land line-aligned).
#[test]
fn stencil_data_transform_eliminates_false_sharing() {
    let (scale, procs) = (0.09, 32);
    let cd = total_of("stencil", scale, procs, Strategy::CompDecomp);
    let full = total_of("stencil", scale, procs, Strategy::Full);

    assert!(
        cd.coh_false > cd.coh_true,
        "comp-decomp coherence must be false-sharing dominated: {} false vs {} true",
        cd.coh_false,
        cd.coh_true
    );
    assert!(
        cd.coh_false > cd.cold + cd.capacity + cd.conflict,
        "false sharing must dominate all other miss classes: {cd:?}"
    );
    assert!(
        cd.coh_false > 10 * full.coh_false,
        "data transform must drop false sharing >10x: {} -> {}",
        cd.coh_false,
        full.coh_false
    );
}

/// (b) Vpenta: conflict misses dominate the untransformed layout and
/// spike as P grows; the data transformation removes the pathology.
#[test]
fn vpenta_conflict_misses_spike_at_high_p_without_transform() {
    let scale = 1.0;
    let low = total_of("vpenta", scale, 2, Strategy::CompDecomp);
    let high = total_of("vpenta", scale, 32, Strategy::CompDecomp);
    let full = total_of("vpenta", scale, 32, Strategy::Full);

    assert!(
        high.conflict > high.cold + high.capacity + high.coherence(),
        "untransformed vpenta at P=32 must be conflict dominated: {high:?}"
    );
    assert!(
        high.conflict * 2 > low.conflict * 3,
        "conflicts must spike at high P: {} at P=2 -> {} at P=32",
        low.conflict,
        high.conflict
    );
    assert!(
        high.conflict > 10 * full.conflict,
        "data transform must remove the conflict pathology: {} -> {}",
        high.conflict,
        full.conflict
    );
}

/// (c) LU: P=32 shows conflict misses >> P=31 without the transform
/// (power-of-2 column stride), and parity with it under the strip-mined
/// layout.
#[test]
fn lu_power_of_two_conflict_pathology_vanishes_under_transform() {
    let scale = 1.0;
    let cd31 = total_of("lu", scale, 31, Strategy::CompDecomp);
    let cd32 = total_of("lu", scale, 32, Strategy::CompDecomp);
    let full31 = total_of("lu", scale, 31, Strategy::Full);
    let full32 = total_of("lu", scale, 32, Strategy::Full);

    assert!(
        cd32.conflict > 10 * cd31.conflict,
        "P=32 must show the power-of-2 conflict pathology P=31 avoids: {} vs {}",
        cd32.conflict,
        cd31.conflict
    );
    assert!(
        cd32.conflict > cd32.cold + cd32.capacity + cd32.coherence(),
        "untransformed LU at P=32 must be conflict dominated: {cd32:?}"
    );
    // Parity: with the transform the two processor counts are within 4x
    // of each other (vs the >10x pathology gap without it).
    let (a, b) = (full32.conflict.max(full31.conflict), full32.conflict.min(full31.conflict));
    assert!(
        a <= 4 * b.max(1),
        "transformed layout must restore 32-vs-31 parity: {} vs {}",
        full32.conflict,
        full31.conflict
    );
    assert!(
        cd32.conflict > 10 * full32.conflict,
        "transform must remove the P=32 pathology: {} -> {}",
        cd32.conflict,
        full32.conflict
    );
}
