//! Crash-safety of the checkpointed sweep: a killed sweep resumes without
//! recomputing finished cells, budgets turn runaway cells into structured
//! timeouts, corrupt checkpoints are quarantined to `corrupt/` (never
//! silently trusted), stale temp files from crashed writers are cleaned,
//! and partial results always render.

use dct_bench::sweep::{
    checkpoint_to_json, load_cells, load_report, render_sweep, run_sweep, save_cell, Cell,
    CellOutcome, SweepConfig,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

/// A fresh scratch directory per test (cleaned up on drop).
struct Scratch(PathBuf);

impl Scratch {
    fn new() -> Scratch {
        let d = std::env::temp_dir().join(format!(
            "dct-sweep-test-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        Scratch(d)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn stencil_only(dir: &Scratch) -> SweepConfig {
    let mut cfg = SweepConfig::new(4, 0.05, dir.0.clone());
    cfg.only = Some(vec!["stencil".to_string()]);
    cfg
}

/// The sentinel pre-seeded checkpoint: simulates a cell completed by a
/// previous sweep that was killed mid-run.
const SENTINEL: u64 = 123_456_789;

fn sentinel_cell(scale: f64) -> Cell {
    Cell::new("stencil", "base", 4, scale, CellOutcome::Cycles(SENTINEL))
}

#[test]
fn resume_skips_completed_cells() {
    let dir = Scratch::new();
    let mut cfg = stencil_only(&dir);

    // A previous (killed) sweep completed exactly one cell.
    save_cell(&dir.0, &sentinel_cell(cfg.scale)).unwrap();

    // Resume: the checkpointed cell is reused verbatim, the rest run.
    cfg.resume = true;
    let cells = run_sweep(&cfg).unwrap();
    assert_eq!(cells.len(), 4, "seq + three strategies");
    let base = cells.iter().find(|c| c.kind == "base").unwrap();
    assert_eq!(
        base.outcome,
        CellOutcome::Cycles(SENTINEL),
        "resume must skip the completed cell, not recompute it"
    );
    for c in cells.iter().filter(|c| c.kind != "base") {
        assert!(matches!(c.outcome, CellOutcome::Cycles(_)), "{c:?}");
    }

    // All four cells are now checkpointed on disk, atomically (no temp
    // files left behind).
    assert_eq!(load_cells(&dir.0).len(), 4);
    for e in std::fs::read_dir(&dir.0).unwrap() {
        let e = e.unwrap();
        if e.path().is_dir() {
            continue; // corrupt/ quarantine dir
        }
        let name = e.file_name().into_string().unwrap();
        assert!(name.ends_with(".json"), "leftover temp file {name}");
    }

    // A second resume recomputes nothing: every outcome is identical,
    // including the sentinel.
    let again = run_sweep(&cfg).unwrap();
    for (a, b) in cells.iter().zip(&again) {
        assert_eq!(a.outcome, b.outcome, "{}/{}", a.bench, a.kind);
    }

    // Without --resume the sentinel cell is recomputed for real.
    cfg.resume = false;
    let fresh = run_sweep(&cfg).unwrap();
    let base = fresh.iter().find(|c| c.kind == "base").unwrap();
    assert_ne!(base.outcome, CellOutcome::Cycles(SENTINEL));
}

#[test]
fn budget_aborts_into_timeout_cells() {
    let dir = Scratch::new();
    let mut cfg = stencil_only(&dir);
    cfg.max_cycles = Some(1); // everything is over budget immediately
    let cells = run_sweep(&cfg).unwrap();
    assert_eq!(cells.len(), 4);
    for c in &cells {
        assert_eq!(c.outcome, CellOutcome::Timeout, "{c:?}");
    }
    // Timeout cells count as completed: resume does not retry them.
    cfg.resume = true;
    cfg.max_cycles = None;
    let again = run_sweep(&cfg).unwrap();
    for c in &again {
        assert_eq!(c.outcome, CellOutcome::Timeout, "{c:?}");
    }
    // The partial table renders the holes instead of failing.
    let table = render_sweep(&cells, 4, cfg.scale);
    assert!(table.contains("timeout"), "{table}");
}

/// A writer killed between the temp-file write and the rename leaves a
/// stray `.tmp` behind and no final checkpoint. The loader must delete
/// the stray (not load it, not trip over it) and the cell must recompute.
#[test]
fn crash_between_temp_write_and_rename_is_cleaned_up() {
    let dir = Scratch::new();
    let cfg = stencil_only(&dir);
    std::fs::create_dir_all(&dir.0).unwrap();

    // Simulate the torn write: half a checkpoint under the temp name.
    let cell = sentinel_cell(cfg.scale);
    let json = checkpoint_to_json(&cell);
    let tmp = dir.0.join(format!(".{}.tmp", cell.filename()));
    std::fs::write(&tmp, &json.as_bytes()[..json.len() / 2]).unwrap();

    let rep = load_report(&dir.0, None);
    assert_eq!(rep.tmp_cleaned, 1, "stray temp must be cleaned");
    assert!(rep.cells.is_empty(), "a torn temp must never load as a cell");
    assert!(!tmp.exists(), "stray temp still on disk");

    // The cell recomputes for real on resume (no sentinel anywhere).
    let mut cfg = cfg;
    cfg.resume = true;
    let cells = run_sweep(&cfg).unwrap();
    let base = cells.iter().find(|c| c.kind == "base").unwrap();
    assert!(matches!(base.outcome, CellOutcome::Cycles(n) if n != SENTINEL), "{base:?}");
}

/// A checkpoint corrupted on disk (bit flip) must fail checksum
/// verification, move to `corrupt/` with a reason, and recompute —
/// never be silently trusted or silently deleted.
#[test]
fn bit_flipped_checkpoint_lands_in_corrupt_dir() {
    let dir = Scratch::new();
    let mut cfg = stencil_only(&dir);
    let cell = sentinel_cell(cfg.scale);
    save_cell(&dir.0, &cell).unwrap();

    // Storage bit-rot: flip one bit in the middle of the file.
    let path = dir.0.join(cell.filename());
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x08;
    std::fs::write(&path, &bytes).unwrap();

    let rep = load_report(&dir.0, None);
    assert!(rep.cells.is_empty(), "corrupt checkpoint must not load");
    assert_eq!(rep.corrupt.len(), 1, "corrupt file must be reported");
    let (name, reason) = &rep.corrupt[0];
    assert_eq!(name, &cell.filename());
    assert!(!reason.is_empty(), "reason must be preserved");
    assert!(!path.exists(), "corrupt file must leave the checkpoint dir");
    assert!(
        dir.0.join("corrupt").join(cell.filename()).exists(),
        "corrupt file must be preserved under corrupt/ for diagnosis"
    );

    // Resume recomputes the cell instead of trusting the corpse.
    cfg.resume = true;
    let cells = run_sweep(&cfg).unwrap();
    let base = cells.iter().find(|c| c.kind == "base").unwrap();
    assert!(matches!(base.outcome, CellOutcome::Cycles(n) if n != SENTINEL), "{base:?}");
}

#[test]
fn partial_sweep_renders_with_holes() {
    let cells = vec![
        Cell::new("lu", "seq", 1, 1.0, CellOutcome::Cycles(1000)),
        Cell::new("lu", "base", 32, 1.0, CellOutcome::Cycles(100)),
        Cell::new("lu", "full", 32, 1.0, CellOutcome::Failed("boom".into())),
    ];
    let table = render_sweep(&cells, 32, 1.0);
    assert!(table.contains("lu"), "{table}");
    assert!(table.contains("10.0"), "base speedup 1000/100: {table}");
    assert!(table.contains("fail"), "{table}");
    assert!(table.contains('-'), "missing comp cell renders as a hole: {table}");
    assert!(table.contains("! full: boom"), "{table}");
}

#[test]
fn quarantined_cells_render_and_are_retried_on_resume() {
    let cells = vec![
        Cell::new("adi", "seq", 1, 1.0, CellOutcome::Cycles(500)),
        Cell::new(
            "adi",
            "full",
            32,
            1.0,
            CellOutcome::Quarantined("attempt 4 (rung reference-walk): boom".into()),
        ),
    ];
    let table = render_sweep(&cells, 32, 1.0);
    assert!(table.contains("quar"), "{table}");
    assert!(table.contains("! full quarantined:"), "{table}");

    // On disk, a quarantined cell does not satisfy resume — it recomputes.
    let dir = Scratch::new();
    let mut cfg = stencil_only(&dir);
    save_cell(
        &dir.0,
        &Cell::new("stencil", "base", 4, cfg.scale, CellOutcome::Quarantined("old".into())),
    )
    .unwrap();
    cfg.resume = true;
    let cells = run_sweep(&cfg).unwrap();
    let base = cells.iter().find(|c| c.kind == "base").unwrap();
    assert!(
        matches!(base.outcome, CellOutcome::Cycles(_)),
        "quarantined checkpoint must be retried on resume: {base:?}"
    );
}
