//! Crash-safety of the checkpointed sweep: a killed sweep resumes without
//! recomputing finished cells, budgets turn runaway cells into structured
//! timeouts, and partial results always render.

use dct_bench::sweep::{
    load_cells, render_sweep, run_sweep, save_cell, Cell, CellOutcome, SweepConfig,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

/// A fresh scratch directory per test (cleaned up on drop).
struct Scratch(PathBuf);

impl Scratch {
    fn new() -> Scratch {
        let d = std::env::temp_dir().join(format!(
            "dct-sweep-test-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        Scratch(d)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn stencil_only(dir: &Scratch) -> SweepConfig {
    let mut cfg = SweepConfig::new(4, 0.05, dir.0.clone());
    cfg.only = Some(vec!["stencil".to_string()]);
    cfg
}

/// The sentinel pre-seeded checkpoint: simulates a cell completed by a
/// previous sweep that was killed mid-run.
const SENTINEL: u64 = 123_456_789;

#[test]
fn resume_skips_completed_cells() {
    let dir = Scratch::new();
    let mut cfg = stencil_only(&dir);

    // A previous (killed) sweep completed exactly one cell.
    save_cell(
        &dir.0,
        &Cell {
            bench: "stencil".into(),
            kind: "base".into(),
            procs: 4,
            scale: cfg.scale,
            outcome: CellOutcome::Cycles(SENTINEL),
        },
    )
    .unwrap();

    // Resume: the checkpointed cell is reused verbatim, the rest run.
    cfg.resume = true;
    let cells = run_sweep(&cfg).unwrap();
    assert_eq!(cells.len(), 4, "seq + three strategies");
    let base = cells.iter().find(|c| c.kind == "base").unwrap();
    assert_eq!(
        base.outcome,
        CellOutcome::Cycles(SENTINEL),
        "resume must skip the completed cell, not recompute it"
    );
    for c in cells.iter().filter(|c| c.kind != "base") {
        assert!(matches!(c.outcome, CellOutcome::Cycles(_)), "{c:?}");
    }

    // All four cells are now checkpointed on disk, atomically (no temp
    // files left behind).
    assert_eq!(load_cells(&dir.0).len(), 4);
    for e in std::fs::read_dir(&dir.0).unwrap() {
        let name = e.unwrap().file_name().into_string().unwrap();
        assert!(name.ends_with(".json"), "leftover temp file {name}");
    }

    // A second resume recomputes nothing: every outcome is identical,
    // including the sentinel.
    let again = run_sweep(&cfg).unwrap();
    for (a, b) in cells.iter().zip(&again) {
        assert_eq!(a.outcome, b.outcome, "{}/{}", a.bench, a.kind);
    }

    // Without --resume the sentinel cell is recomputed for real.
    cfg.resume = false;
    let fresh = run_sweep(&cfg).unwrap();
    let base = fresh.iter().find(|c| c.kind == "base").unwrap();
    assert_ne!(base.outcome, CellOutcome::Cycles(SENTINEL));
}

#[test]
fn budget_aborts_into_timeout_cells() {
    let dir = Scratch::new();
    let mut cfg = stencil_only(&dir);
    cfg.max_cycles = Some(1); // everything is over budget immediately
    let cells = run_sweep(&cfg).unwrap();
    assert_eq!(cells.len(), 4);
    for c in &cells {
        assert_eq!(c.outcome, CellOutcome::Timeout, "{c:?}");
    }
    // Timeout cells count as completed: resume does not retry them.
    cfg.resume = true;
    cfg.max_cycles = None;
    let again = run_sweep(&cfg).unwrap();
    for c in &again {
        assert_eq!(c.outcome, CellOutcome::Timeout, "{c:?}");
    }
    // The partial table renders the holes instead of failing.
    let table = render_sweep(&cells, 4, cfg.scale);
    assert!(table.contains("timeout"), "{table}");
}

#[test]
fn partial_sweep_renders_with_holes() {
    let cells = vec![
        Cell {
            bench: "lu".into(),
            kind: "seq".into(),
            procs: 1,
            scale: 1.0,
            outcome: CellOutcome::Cycles(1000),
        },
        Cell {
            bench: "lu".into(),
            kind: "base".into(),
            procs: 32,
            scale: 1.0,
            outcome: CellOutcome::Cycles(100),
        },
        Cell {
            bench: "lu".into(),
            kind: "full".into(),
            procs: 32,
            scale: 1.0,
            outcome: CellOutcome::Failed("boom".into()),
        },
    ];
    let table = render_sweep(&cells, 32, 1.0);
    assert!(table.contains("lu"), "{table}");
    assert!(table.contains("10.0"), "base speedup 1000/100: {table}");
    assert!(table.contains("fail"), "{table}");
    assert!(table.contains('-'), "missing comp cell renders as a hole: {table}");
    assert!(table.contains("! full: boom"), "{table}");
}
