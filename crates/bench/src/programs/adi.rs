//! ADI integration (paper Figure 9): a column sweep followed by a row
//! sweep each time step, over X, A and B.
//!
//! Paper behaviour to reproduce (Figure 10): the base compiler distributes
//! each sweep by its own outermost parallel loop, so processors touch
//! completely different data in the two phases; the decomposition
//! algorithm chooses a static block column distribution, runs the column
//! sweep doall and the row sweep as a tiled doacross pipeline. The data
//! accessed by each processor are already contiguous (block of columns =
//! highest dimension), so no data transformation is needed — Table 1 marks
//! only "Comp Decomp" as critical.

use dct_ir::{Aff, Expr, Program, ProgramBuilder};

/// Build ADI on `n x n` REAL arrays for `steps` time steps.
pub fn adi(n: i64, steps: i64) -> Program {
    let mut pb = ProgramBuilder::new("adi");
    let np = pb.param("N", n);
    let x = pb.array("X", &[Aff::param(np), Aff::param(np)], 4);
    let a = pb.array("A", &[Aff::param(np), Aff::param(np)], 4);
    let b = pb.array("B", &[Aff::param(np), Aff::param(np)], 4);
    let _t = pb.time_loop(Aff::konst(steps));

    for (arr, base, name) in [(x, 1.0, "initX"), (a, 0.3, "initA"), (b, 2.0, "initB")] {
        let mut nb = pb.nest_builder(name);
        let j = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
        let i = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
        let v = Expr::Const(base)
            + Expr::Index(i) * Expr::Const(0.001)
            + Expr::Index(j) * Expr::Const(0.002);
        nb.assign(arr, &[Aff::var(i), Aff::var(j)], v);
        pb.init_nest(nb.build());
    }

    // Column sweep: DO I1 = 1,N (cols); DO I2 = 2,N:
    //   X(I2,I1) = X(I2,I1) - X(I2-1,I1)*A(I2,I1)/B(I2-1,I1)
    //   B(I2,I1) = B(I2,I1) - A(I2,I1)*A(I2,I1)/B(I2-1,I1)
    let mut nb = pb.nest_builder("colsweep");
    let i1 = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let i2 = nb.loop_var(Aff::konst(1), Aff::param(np) - 1);
    let rx = nb.read(x, &[Aff::var(i2), Aff::var(i1)])
        - nb.read(x, &[Aff::var(i2) - 1, Aff::var(i1)])
            * nb.read(a, &[Aff::var(i2), Aff::var(i1)])
            / nb.read(b, &[Aff::var(i2) - 1, Aff::var(i1)]);
    nb.assign(x, &[Aff::var(i2), Aff::var(i1)], rx);
    let rb = nb.read(b, &[Aff::var(i2), Aff::var(i1)])
        - nb.read(a, &[Aff::var(i2), Aff::var(i1)])
            * nb.read(a, &[Aff::var(i2), Aff::var(i1)])
            / nb.read(b, &[Aff::var(i2) - 1, Aff::var(i1)]);
    nb.assign(b, &[Aff::var(i2), Aff::var(i1)], rb);
    pb.nest(nb.build());

    // Row sweep: DO I1 = 2,N (cols, carried); DO I2 = 1,N (rows):
    //   X(I2,I1) = X(I2,I1) - X(I2,I1-1)*A(I2,I1)/B(I2,I1-1)
    //   B(I2,I1) = B(I2,I1) - A(I2,I1)*A(I2,I1)/B(I2,I1-1)
    let mut nb = pb.nest_builder("rowsweep");
    let i1 = nb.loop_var(Aff::konst(1), Aff::param(np) - 1);
    let i2 = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let rx = nb.read(x, &[Aff::var(i2), Aff::var(i1)])
        - nb.read(x, &[Aff::var(i2), Aff::var(i1) - 1])
            * nb.read(a, &[Aff::var(i2), Aff::var(i1)])
            / nb.read(b, &[Aff::var(i2), Aff::var(i1) - 1]);
    nb.assign(x, &[Aff::var(i2), Aff::var(i1)], rx);
    let rb = nb.read(b, &[Aff::var(i2), Aff::var(i1)])
        - nb.read(a, &[Aff::var(i2), Aff::var(i1)])
            * nb.read(a, &[Aff::var(i2), Aff::var(i1)])
            / nb.read(b, &[Aff::var(i2), Aff::var(i1) - 1]);
    nb.assign(b, &[Aff::var(i2), Aff::var(i1)], rb);
    pb.nest(nb.build());

    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dct_core::{Compiler, Strategy};
    use dct_decomp::Folding;

    #[test]
    fn decomposition_matches_table1() {
        let prog = adi(64, 2);
        let c = Compiler::new(Strategy::Full).compile(&prog).unwrap();
        // Table 1: A(*, BLOCK) (block columns) on a rank-1 grid.
        assert_eq!(c.decomposition.grid_rank, 1);
        assert_eq!(c.decomposition.foldings, vec![Folding::Block]);
        assert_eq!(c.decomposition.hpf_of(&c.program, 0), "X(*, BLOCK)");
        assert_eq!(c.decomposition.hpf_of(&c.program, 1), "A(*, BLOCK)");
        assert_eq!(c.decomposition.hpf_of(&c.program, 2), "B(*, BLOCK)");
        // Row sweep runs as a doacross pipeline.
        assert!(c.decomposition.comp[1].pipeline_level.is_some());
        // No data transformation should be produced: block columns are the
        // highest dimension, already contiguous.
        let opts = Compiler::new(Strategy::Full).sim_options(8, prog.default_params());
        let sp = dct_spmd::codegen(&c.program, &c.decomposition, &dct_spmd::SpmdOptions {
            procs: 8,
            params: opts.params.clone(),
            transform_data: true,
            barrier_elision: true,
            cost: dct_spmd::CostModel::default(),
        }).unwrap();
        assert!(sp.layouts.iter().all(|l| !l.transformed), "ADI needs no layout change");
    }
}
