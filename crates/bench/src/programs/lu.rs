//! LU decomposition without pivoting (paper Figure 5).
//!
//! The sequential `I1` (pivot) loop becomes the program's time loop; the
//! scale-and-update nests reference the current pivot through the time
//! pseudo-parameter. Paper behaviour to reproduce (Figure 6): the
//! decomposition algorithm assigns whole columns to processors CYCLIC for
//! load balance; without the data transformation the cyclic columns
//! conflict badly in the direct-mapped cache (power-of-two pathology, 32
//! processors far worse than 31); the transformation packs each
//! processor's columns contiguously and stabilizes performance.

use dct_ir::{Aff, Expr, Program, ProgramBuilder};

/// Build `n x n` LU decomposition (DOUBLE PRECISION).
pub fn lu(n: i64) -> Program {
    let mut pb = ProgramBuilder::new("lu");
    let np = pb.param("N", n);
    let a = pb.array("A", &[Aff::param(np), Aff::param(np)], 8);
    let t = pb.time_loop(Aff::param(np) - 1);

    // Parallel initialization: a well-conditioned dense matrix.
    let mut nb = pb.nest_builder("init");
    let j = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let i = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let v = Expr::Const(1.0) / (Expr::Index(i) + Expr::Index(j) + Expr::Const(1.0))
        + Expr::Const(4.0);
    nb.assign(a, &[Aff::var(i), Aff::var(j)], v);
    pb.init_nest(nb.build());

    // A(I2,I1) = A(I2,I1) / A(I1,I1)   for I2 = I1+1..N-1.
    let mut nb = pb.nest_builder("div");
    let i2 = nb.loop_var(Aff::param(t) + 1, Aff::param(np) - 1);
    let rhs =
        nb.read(a, &[Aff::var(i2), Aff::param(t)]) / nb.read(a, &[Aff::param(t), Aff::param(t)]);
    nb.assign(a, &[Aff::var(i2), Aff::param(t)], rhs);
    nb.freq(10);
    pb.nest(nb.build());

    // A(I2,I3) = A(I2,I3) - A(I2,I1)*A(I1,I3).
    let mut nb = pb.nest_builder("update");
    let i2 = nb.loop_var(Aff::param(t) + 1, Aff::param(np) - 1);
    let i3 = nb.loop_var(Aff::param(t) + 1, Aff::param(np) - 1);
    let rhs = nb.read(a, &[Aff::var(i2), Aff::var(i3)])
        - nb.read(a, &[Aff::var(i2), Aff::param(t)]) * nb.read(a, &[Aff::param(t), Aff::var(i3)]);
    nb.assign(a, &[Aff::var(i2), Aff::var(i3)], rhs);
    nb.freq(100);
    pb.nest(nb.build());

    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dct_core::{Compiler, Strategy};
    use dct_decomp::{CompRow, Folding};

    #[test]
    fn decomposition_matches_table1() {
        let prog = lu(64);
        let c = Compiler::new(Strategy::Full).compile(&prog).unwrap();
        // Table 1: A(*, CYCLIC), rank-1 grid.
        assert_eq!(c.decomposition.grid_rank, 1);
        assert_eq!(c.decomposition.foldings, vec![Folding::Cyclic]);
        assert_eq!(c.decomposition.hpf_of(&c.program, 0), "A(*, CYCLIC)");
        // The pivot-column scaling nest is localized to the column owner.
        assert!(matches!(c.decomposition.comp[0].rows[0], CompRow::Localized(_)));
        // The update nest distributes its column loop.
        assert_eq!(c.decomposition.comp[1].level_of(0), Some(1));
    }
}
