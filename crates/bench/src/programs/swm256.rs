//! Swm256 (SPEC92): shallow-water equations by finite differences — a
//! highly data-parallel sequence of 2-D stencil nests inside a time loop.
//!
//! Paper behaviour to reproduce (Figure 12): the base compiler already
//! gets good speedups (outermost loop of every nest is parallel); the
//! decomposition algorithm picks 2-D blocks for a better
//! communication-to-computation ratio, which *loses* without the data
//! transformation (scattered partitions) and ends slightly ahead of base
//! with it.

use dct_ir::{Aff, Expr, Program, ProgramBuilder};

/// Build swm256 on `n x n` REAL grids for `steps` time steps.
pub fn swm256(n: i64, steps: i64) -> Program {
    let mut pb = ProgramBuilder::new("swm256");
    let np = pb.param("N", n);
    let d2 = [Aff::param(np), Aff::param(np)];
    let u = pb.array("U", &d2, 4);
    let v = pb.array("V", &d2, 4);
    let p = pb.array("P", &d2, 4);
    let cu = pb.array("CU", &d2, 4);
    let cv = pb.array("CV", &d2, 4);
    let z = pb.array("Z", &d2, 4);
    let h = pb.array("H", &d2, 4);
    let _t = pb.time_loop(Aff::konst(steps));

    for (arr, base, name) in [
        (u, 0.5, "initU"),
        (v, 0.4, "initV"),
        (p, 50.0, "initP"),
        (cu, 0.0, "initCU"),
        (cv, 0.0, "initCV"),
        (z, 0.0, "initZ"),
        (h, 0.0, "initH"),
    ] {
        let mut nb = pb.nest_builder(name);
        let j = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
        let i = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
        let val = Expr::Const(base)
            + Expr::Index(i) * Expr::Const(0.001)
            + Expr::Index(j) * Expr::Const(0.003);
        nb.assign(arr, &[Aff::var(i), Aff::var(j)], val);
        pb.init_nest(nb.build());
    }

    // Loop 100: mass fluxes and potential vorticity/enthalpy.
    let mut nb = pb.nest_builder("fluxes");
    let j = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
    let i = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
    let rcu = (nb.read(p, &[Aff::var(i), Aff::var(j)]) + nb.read(p, &[Aff::var(i) - 1, Aff::var(j)]))
        * Expr::Const(0.5)
        * nb.read(u, &[Aff::var(i), Aff::var(j)]);
    nb.assign(cu, &[Aff::var(i), Aff::var(j)], rcu);
    let rcv = (nb.read(p, &[Aff::var(i), Aff::var(j)]) + nb.read(p, &[Aff::var(i), Aff::var(j) - 1]))
        * Expr::Const(0.5)
        * nb.read(v, &[Aff::var(i), Aff::var(j)]);
    nb.assign(cv, &[Aff::var(i), Aff::var(j)], rcv);
    let rz = (nb.read(v, &[Aff::var(i), Aff::var(j)]) - nb.read(v, &[Aff::var(i) - 1, Aff::var(j)])
        + nb.read(u, &[Aff::var(i), Aff::var(j)])
        - nb.read(u, &[Aff::var(i), Aff::var(j) - 1]))
        / (nb.read(p, &[Aff::var(i), Aff::var(j)]) + Expr::Const(1.0));
    nb.assign(z, &[Aff::var(i), Aff::var(j)], rz);
    let rh = nb.read(p, &[Aff::var(i), Aff::var(j)])
        + (nb.read(u, &[Aff::var(i), Aff::var(j)]) * nb.read(u, &[Aff::var(i), Aff::var(j)])
            + nb.read(v, &[Aff::var(i), Aff::var(j)]) * nb.read(v, &[Aff::var(i), Aff::var(j)]))
            * Expr::Const(0.25);
    nb.assign(h, &[Aff::var(i), Aff::var(j)], rh);
    pb.nest(nb.build());

    // Loop 200: update the prognostic variables from the fluxes.
    let mut nb = pb.nest_builder("update");
    let j = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
    let i = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
    let ru = nb.read(u, &[Aff::var(i), Aff::var(j)])
        + (nb.read(z, &[Aff::var(i), Aff::var(j)]) + nb.read(z, &[Aff::var(i), Aff::var(j) - 1]))
            * Expr::Const(0.125)
            * (nb.read(cv, &[Aff::var(i), Aff::var(j)])
                + nb.read(cv, &[Aff::var(i) - 1, Aff::var(j)]))
        - (nb.read(h, &[Aff::var(i), Aff::var(j)]) - nb.read(h, &[Aff::var(i) - 1, Aff::var(j)]))
            * Expr::Const(0.01);
    nb.assign(u, &[Aff::var(i), Aff::var(j)], ru);
    let rv = nb.read(v, &[Aff::var(i), Aff::var(j)])
        - (nb.read(z, &[Aff::var(i), Aff::var(j)]) + nb.read(z, &[Aff::var(i) - 1, Aff::var(j)]))
            * Expr::Const(0.125)
            * (nb.read(cu, &[Aff::var(i), Aff::var(j)])
                + nb.read(cu, &[Aff::var(i), Aff::var(j) - 1]))
        - (nb.read(h, &[Aff::var(i), Aff::var(j)]) - nb.read(h, &[Aff::var(i), Aff::var(j) - 1]))
            * Expr::Const(0.01);
    nb.assign(v, &[Aff::var(i), Aff::var(j)], rv);
    let rp = nb.read(p, &[Aff::var(i), Aff::var(j)])
        - (nb.read(cu, &[Aff::var(i), Aff::var(j)]) - nb.read(cu, &[Aff::var(i) - 1, Aff::var(j)])
            + nb.read(cv, &[Aff::var(i), Aff::var(j)])
            - nb.read(cv, &[Aff::var(i), Aff::var(j) - 1]))
            * Expr::Const(0.02);
    nb.assign(p, &[Aff::var(i), Aff::var(j)], rp);
    pb.nest(nb.build());

    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dct_core::{Compiler, Strategy};

    #[test]
    fn decomposition_matches_table1() {
        let prog = swm256(64, 2);
        let c = Compiler::new(Strategy::Full).compile(&prog).unwrap();
        // Table 1: P(BLOCK, BLOCK) — two-dimensional blocks.
        assert_eq!(c.decomposition.grid_rank, 2);
        let p_hpf = c.decomposition.hpf_of(&c.program, 2);
        assert_eq!(p_hpf, "P(BLOCK, BLOCK)");
        for x in 0..c.program.arrays.len() {
            assert!(
                c.decomposition.data[x].is_distributed(),
                "{} should be distributed",
                c.program.arrays[x].name
            );
        }
    }
}
