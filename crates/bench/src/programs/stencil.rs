//! Five-point stencil (paper Figure 7): the 2-D Jacobi smoothing kernel
//! inside a time loop, with a copy-back nest making `B` live across steps.
//!
//! Paper behaviour to reproduce (Figure 8): the base compiler distributes
//! the outer loop (1-D blocks of columns); the decomposition algorithm
//! picks 2-D blocks, which are *worse* without the data transformation
//! (non-contiguous partitions) and best with it.

use dct_ir::{Aff, Expr, Program, ProgramBuilder};

/// Build the five-point stencil on an `n x n` REAL grid for `steps` steps.
pub fn stencil(n: i64, steps: i64) -> Program {
    let mut pb = ProgramBuilder::new("stencil");
    let np = pb.param("N", n);
    let a = pb.array("A", &[Aff::param(np), Aff::param(np)], 4);
    let b = pb.array("B", &[Aff::param(np), Aff::param(np)], 4);
    let _t = pb.time_loop(Aff::konst(steps));

    // C Initialize B (parallel; determines first-touch page homes).
    let mut nb = pb.nest_builder("initB");
    let j = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let i = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let v = Expr::Index(i) * Expr::Const(0.01) + Expr::Index(j) * Expr::Const(0.02) + Expr::Const(1.0);
    nb.assign(b, &[Aff::var(i), Aff::var(j)], v);
    pb.init_nest(nb.build());
    let mut nb = pb.nest_builder("initA");
    let j = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let i = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    nb.assign(a, &[Aff::var(i), Aff::var(j)], Expr::Const(0.0));
    pb.init_nest(nb.build());

    // DO 10 I1 = 1,N ; DO 10 I2 = 2,N:
    //   A(I2,I1) = .2*(B(I2,I1)+B(I2-1,I1)+B(I2+1,I1)+B(I2,I1-1)+B(I2,I1+1))
    let mut nb = pb.nest_builder("stencil");
    let i1 = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
    let i2 = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
    let rhs = (nb.read(b, &[Aff::var(i2), Aff::var(i1)])
        + nb.read(b, &[Aff::var(i2) - 1, Aff::var(i1)])
        + nb.read(b, &[Aff::var(i2) + 1, Aff::var(i1)])
        + nb.read(b, &[Aff::var(i2), Aff::var(i1) - 1])
        + nb.read(b, &[Aff::var(i2), Aff::var(i1) + 1]))
        * Expr::Const(0.2);
    nb.assign(a, &[Aff::var(i2), Aff::var(i1)], rhs);
    pb.nest(nb.build());

    // Copy back for the next step.
    let mut nb = pb.nest_builder("copyback");
    let i1 = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
    let i2 = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
    let rhs = nb.read(a, &[Aff::var(i2), Aff::var(i1)]);
    nb.assign(b, &[Aff::var(i2), Aff::var(i1)], rhs);
    pb.nest(nb.build());

    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dct_core::{Compiler, Strategy};

    #[test]
    fn decomposition_matches_table1() {
        let prog = stencil(64, 2);
        let c = Compiler::new(Strategy::Full).compile(&prog).unwrap();
        // Table 1: A(BLOCK, BLOCK) on a 2-D grid.
        assert_eq!(c.decomposition.grid_rank, 2);
        assert_eq!(c.decomposition.hpf_of(&c.program, 0), "A(BLOCK, BLOCK)");
        assert_eq!(c.decomposition.hpf_of(&c.program, 1), "B(BLOCK, BLOCK)");
    }
}
