//! Erlebacher (ICASE): three-dimensional tridiagonal solves — partial
//! derivatives in X, Y and Z computed from a shared input array, with
//! forward-substitution wavefronts along the respective dimension, plus a
//! fully parallel combination phase.
//!
//! Paper behaviour to reproduce (Figure 11, Table 1): the input array is
//! read-only and gets replicated; DUX and DUY are distributed
//! (*, *, BLOCK), DUZ (*, BLOCK, *); the Z phase would otherwise have poor
//! locality; overall improvement is modest because two-thirds of the
//! program is already perfectly parallel with local accesses.

use dct_ir::{Aff, Expr, Program, ProgramBuilder};

/// Build erlebacher on `n^3` REAL arrays.
///
/// The real 600-line benchmark runs ~10 derivative/solve phases over the
/// same arrays; we model that volume by repeating the four phases in a
/// short outer loop, which also amortizes the one-time replication of the
/// input array exactly as the longer original does.
pub fn erlebacher(n: i64) -> Program {
    let mut pb = ProgramBuilder::new("erlebacher");
    let np = pb.param("N", n);
    let dims = [Aff::param(np), Aff::param(np), Aff::param(np)];
    let u = pb.array("U", &dims, 4);
    let dux = pb.array("DUX", &dims, 4);
    let duy = pb.array("DUY", &dims, 4);
    let duz = pb.array("DUZ", &dims, 4);
    let tot = pb.array("TOT", &dims, 4);
    let _t = pb.time_loop(Aff::konst(3));

    // Initialize the input array (written only here: read-only for the
    // compute phases, hence a replication candidate).
    let mut nb = pb.nest_builder("initU");
    let k = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let j = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let i = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let v = Expr::Index(i) * Expr::Const(0.01)
        + Expr::Index(j) * Expr::Const(0.02)
        + Expr::Index(k) * Expr::Const(0.03)
        + Expr::Const(1.0);
    nb.assign(u, &[Aff::var(i), Aff::var(j), Aff::var(k)], v);
    pb.init_nest(nb.build());
    for (arr, name) in [(dux, "initDUX"), (duy, "initDUY"), (duz, "initDUZ"), (tot, "initTOT")] {
        let mut nb = pb.nest_builder(name);
        let k = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
        let j = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
        let i = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
        nb.assign(arr, &[Aff::var(i), Aff::var(j), Aff::var(k)], Expr::Const(0.0));
        pb.init_nest(nb.build());
    }

    // X derivative: wavefront along I (forward substitution), K/J parallel.
    let mut nb = pb.nest_builder("xphase");
    let k = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let j = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let i = nb.loop_var(Aff::konst(1), Aff::param(np) - 1);
    let rhs = (nb.read(u, &[Aff::var(i), Aff::var(j), Aff::var(k)])
        - nb.read(u, &[Aff::var(i) - 1, Aff::var(j), Aff::var(k)]))
        * Expr::Const(0.5)
        - nb.read(dux, &[Aff::var(i) - 1, Aff::var(j), Aff::var(k)]) * Expr::Const(0.25);
    nb.assign(dux, &[Aff::var(i), Aff::var(j), Aff::var(k)], rhs);
    pb.nest(nb.build());

    // Y derivative: wavefront along J.
    let mut nb = pb.nest_builder("yphase");
    let k = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let j = nb.loop_var(Aff::konst(1), Aff::param(np) - 1);
    let i = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let rhs = (nb.read(u, &[Aff::var(i), Aff::var(j), Aff::var(k)])
        - nb.read(u, &[Aff::var(i), Aff::var(j) - 1, Aff::var(k)]))
        * Expr::Const(0.5)
        - nb.read(duy, &[Aff::var(i), Aff::var(j) - 1, Aff::var(k)]) * Expr::Const(0.25);
    nb.assign(duy, &[Aff::var(i), Aff::var(j), Aff::var(k)], rhs);
    pb.nest(nb.build());

    // Z derivative: wavefront along K.
    let mut nb = pb.nest_builder("zphase");
    let k = nb.loop_var(Aff::konst(1), Aff::param(np) - 1);
    let j = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let i = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let rhs = (nb.read(u, &[Aff::var(i), Aff::var(j), Aff::var(k)])
        - nb.read(u, &[Aff::var(i), Aff::var(j), Aff::var(k) - 1]))
        * Expr::Const(0.5)
        - nb.read(duz, &[Aff::var(i), Aff::var(j), Aff::var(k) - 1]) * Expr::Const(0.25);
    nb.assign(duz, &[Aff::var(i), Aff::var(j), Aff::var(k)], rhs);
    pb.nest(nb.build());

    // Combination: fully parallel.
    let mut nb = pb.nest_builder("total");
    let k = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let j = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let i = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let rhs = nb.read(dux, &[Aff::var(i), Aff::var(j), Aff::var(k)])
        + nb.read(duy, &[Aff::var(i), Aff::var(j), Aff::var(k)])
        + nb.read(duz, &[Aff::var(i), Aff::var(j), Aff::var(k)]);
    nb.assign(tot, &[Aff::var(i), Aff::var(j), Aff::var(k)], rhs);
    pb.nest(nb.build());

    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dct_core::{Compiler, Strategy};

    #[test]
    fn decomposition_matches_table1() {
        let prog = erlebacher(24);
        let c = Compiler::new(Strategy::Full).compile(&prog).unwrap();
        assert_eq!(c.decomposition.grid_rank, 1);
        // Table 1: input replicated, DUX/DUY (*,*,BLOCK), DUZ (*,BLOCK,*).
        assert!(c.decomposition.data[0].replicated, "input array must be replicated");
        assert_eq!(c.decomposition.hpf_of(&c.program, 1), "DUX(*, *, BLOCK)");
        assert_eq!(c.decomposition.hpf_of(&c.program, 2), "DUY(*, *, BLOCK)");
        assert_eq!(c.decomposition.hpf_of(&c.program, 3), "DUZ(*, BLOCK, *)");
    }
}
