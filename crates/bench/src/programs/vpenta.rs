//! Vpenta (nasa7 / SPEC92 kernel): simultaneous inversion of three
//! pentadiagonal systems — forward elimination and back substitution
//! recurrences along the rows, independent across columns, over a set of
//! two-dimensional coefficient arrays and one three-dimensional
//! right-hand-side array `F(N,N,3)`.
//!
//! Paper behaviour to reproduce (Figure 4, Table 1): every nest is
//! parallel in the column loop; the decomposition is A(*, BLOCK) for the
//! 2-D arrays (no reorganization needed — highest dimension) and
//! F(*, BLOCK, *) for the 3-D array, whose middle-dimension blocks are
//! *not* contiguous until the data transformation packs them; aligned
//! accesses across all nests let the code generator drop barriers.

use dct_ir::{Aff, Expr, Program, ProgramBuilder};

/// Build vpenta on `n x n` systems, `nrhs` right-hand sides per plane
/// (the kernel's value is 3), `2` sweeps.
pub fn vpenta(n: i64, nrhs: i64) -> Program {
    let mut pb = ProgramBuilder::new("vpenta");
    let np = pb.param("N", n);
    let d2 = [Aff::param(np), Aff::param(np)];
    let a = pb.array("A", &d2, 4);
    let b = pb.array("B", &d2, 4);
    let c = pb.array("C", &d2, 4);
    let x = pb.array("X", &d2, 4);
    let f = pb.array("F", &[Aff::param(np), Aff::param(np), Aff::konst(nrhs)], 4);

    for (arr, base, name) in
        [(a, 0.1, "initA"), (b, 0.2, "initB"), (c, 4.0, "initC"), (x, 1.0, "initX")]
    {
        let mut nb = pb.nest_builder(name);
        let j = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
        let i = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
        let v = Expr::Const(base)
            + Expr::Index(i) * Expr::Const(0.001)
            + Expr::Index(j) * Expr::Const(0.002);
        nb.assign(arr, &[Aff::var(i), Aff::var(j)], v);
        pb.init_nest(nb.build());
    }
    let mut nb = pb.nest_builder("initF");
    let k = nb.loop_var(Aff::konst(0), Aff::konst(nrhs - 1));
    let j = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let i = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let v = Expr::Const(1.0) + Expr::Index(i) * Expr::Const(0.01) + Expr::Index(k);
    nb.assign(f, &[Aff::var(i), Aff::var(j), Aff::var(k)], v);
    pb.init_nest(nb.build());

    // Forward elimination on X: recurrence along I, parallel over J.
    let mut nb = pb.nest_builder("fwdX");
    let j = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let i = nb.loop_var(Aff::konst(1), Aff::param(np) - 1);
    let rhs = nb.read(x, &[Aff::var(i), Aff::var(j)])
        - nb.read(a, &[Aff::var(i), Aff::var(j)]) * nb.read(x, &[Aff::var(i) - 1, Aff::var(j)])
            / nb.read(c, &[Aff::var(i) - 1, Aff::var(j)]);
    nb.assign(x, &[Aff::var(i), Aff::var(j)], rhs);
    pb.nest(nb.build());

    // Forward elimination on all right-hand sides F: the middle (J)
    // dimension is the parallel one.
    let mut nb = pb.nest_builder("fwdF");
    let k = nb.loop_var(Aff::konst(0), Aff::konst(nrhs - 1));
    let j = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let i = nb.loop_var(Aff::konst(1), Aff::param(np) - 1);
    let rhs = nb.read(f, &[Aff::var(i), Aff::var(j), Aff::var(k)])
        - nb.read(b, &[Aff::var(i), Aff::var(j)])
            * nb.read(f, &[Aff::var(i) - 1, Aff::var(j), Aff::var(k)]);
    nb.assign(f, &[Aff::var(i), Aff::var(j), Aff::var(k)], rhs);
    pb.nest(nb.build());

    // Back substitution on X (reversed recurrence written with reversed
    // subscripts: element N-1-I depends on N-I).
    let mut nb = pb.nest_builder("backX");
    let j = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let i = nb.loop_var(Aff::konst(1), Aff::param(np) - 1);
    let rev = Aff::param(np) - 1 - Aff::var(i);
    let rev1 = Aff::param(np) - Aff::var(i);
    let rhs = (nb.read(x, &[rev.clone(), Aff::var(j)])
        - nb.read(b, &[rev.clone(), Aff::var(j)]) * nb.read(x, &[rev1, Aff::var(j)]))
        / nb.read(c, &[rev.clone(), Aff::var(j)]);
    nb.assign(x, &[rev, Aff::var(j)], rhs);
    pb.nest(nb.build());

    // Scale the right-hand sides by the solution (a final aligned pass).
    let mut nb = pb.nest_builder("scaleF");
    let k = nb.loop_var(Aff::konst(0), Aff::konst(nrhs - 1));
    let j = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let i = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
    let rhs = nb.read(f, &[Aff::var(i), Aff::var(j), Aff::var(k)])
        / nb.read(c, &[Aff::var(i), Aff::var(j)]);
    nb.assign(f, &[Aff::var(i), Aff::var(j), Aff::var(k)], rhs);
    pb.nest(nb.build());

    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dct_core::{Compiler, Strategy};

    #[test]
    fn decomposition_matches_table1() {
        let prog = vpenta(32, 3);
        let c = Compiler::new(Strategy::Full).compile(&prog).unwrap();
        assert_eq!(c.decomposition.grid_rank, 1);
        // Table 1: A(*, BLOCK) for 2-D arrays, F(*, BLOCK, *) for the 3-D.
        assert_eq!(c.decomposition.hpf_of(&c.program, 0), "A(*, BLOCK)");
        assert_eq!(c.decomposition.hpf_of(&c.program, 3), "X(*, BLOCK)");
        assert_eq!(c.decomposition.hpf_of(&c.program, 4), "F(*, BLOCK, *)");
    }

    #[test]
    fn data_transform_touches_only_f() {
        let prog = vpenta(32, 3);
        let c = Compiler::new(Strategy::Full).compile(&prog).unwrap();
        let sp = dct_spmd::codegen(&c.program, &c.decomposition, &dct_spmd::SpmdOptions {
            procs: 8,
            params: prog.default_params(),
            transform_data: true,
            barrier_elision: true,
            cost: dct_spmd::CostModel::default(),
        }).unwrap();
        // 2-D arrays: highest dim BLOCK -> untouched. F: transformed.
        for (x, lay) in sp.layouts.iter().enumerate() {
            let name = &c.program.arrays[x].name;
            if name == "F" {
                assert!(lay.transformed, "F must be restructured");
            } else {
                assert!(!lay.transformed, "{name} must keep its layout");
            }
        }
    }
}
