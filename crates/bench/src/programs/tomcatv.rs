//! Tomcatv (SPEC92): mesh generation. The program alternates fully
//! parallel residual nests (no dependence) with tridiagonal-solve nests
//! whose recurrence runs along each row (carried by the column index,
//! parallel over rows).
//!
//! Paper behaviour to reproduce (Figure 13, Table 1): the base compiler
//! parallelizes each nest's outermost parallel loop — columns in the
//! no-dependence nests, rows in the row-recurrence nests — so data moves
//! between processors every nest and the row partitions are
//! non-contiguous. The decomposition algorithm fixes a single block-row
//! decomposition AA(BLOCK, *); the data transformation then makes each
//! processor's rows contiguous (speedup 5 -> 18 at 32 processors).

use dct_ir::{Aff, Expr, Program, ProgramBuilder};

/// Build tomcatv on `n x n` REAL arrays for `steps` relaxation iterations.
pub fn tomcatv(n: i64, steps: i64) -> Program {
    let mut pb = ProgramBuilder::new("tomcatv");
    let np = pb.param("N", n);
    let d2 = [Aff::param(np), Aff::param(np)];
    let x = pb.array("X", &d2, 4);
    let y = pb.array("Y", &d2, 4);
    let rx = pb.array("RX", &d2, 4);
    let ry = pb.array("RY", &d2, 4);
    let aa = pb.array("AA", &d2, 4);
    let dd = pb.array("DD", &d2, 4);
    let _t = pb.time_loop(Aff::konst(steps));

    for (arr, base, name) in [
        (x, 1.0, "initX"),
        (y, 2.0, "initY"),
        (rx, 0.0, "initRX"),
        (ry, 0.0, "initRY"),
        (aa, -0.5, "initAA"),
        (dd, 4.0, "initDD"),
    ] {
        let mut nb = pb.nest_builder(name);
        let j = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
        let i = nb.loop_var(Aff::konst(0), Aff::param(np) - 1);
        let v = Expr::Const(base)
            + Expr::Index(i) * Expr::Const(0.002)
            + Expr::Index(j) * Expr::Const(0.001);
        nb.assign(arr, &[Aff::var(i), Aff::var(j)], v);
        pb.init_nest(nb.build());
    }

    // Residual computation (no dependences; FORTRAN order DO J, DO I).
    let mut nb = pb.nest_builder("residual");
    let j = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
    let i = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
    let rrx = nb.read(x, &[Aff::var(i) + 1, Aff::var(j)]) + nb.read(x, &[Aff::var(i) - 1, Aff::var(j)])
        + nb.read(x, &[Aff::var(i), Aff::var(j) + 1])
        + nb.read(x, &[Aff::var(i), Aff::var(j) - 1])
        - nb.read(x, &[Aff::var(i), Aff::var(j)]) * Expr::Const(4.0);
    nb.assign(rx, &[Aff::var(i), Aff::var(j)], rrx);
    let rry = nb.read(y, &[Aff::var(i) + 1, Aff::var(j)]) + nb.read(y, &[Aff::var(i) - 1, Aff::var(j)])
        + nb.read(y, &[Aff::var(i), Aff::var(j) + 1])
        + nb.read(y, &[Aff::var(i), Aff::var(j) - 1])
        - nb.read(y, &[Aff::var(i), Aff::var(j)]) * Expr::Const(4.0);
    nb.assign(ry, &[Aff::var(i), Aff::var(j)], rry);
    pb.nest(nb.build());

    // Forward elimination of the tridiagonal solves along each row:
    // carried by J (the dependence "across the rows"), parallel over I.
    let mut nb = pb.nest_builder("forward");
    let j = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
    let i = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
    let rdd = nb.read(dd, &[Aff::var(i), Aff::var(j)])
        - nb.read(aa, &[Aff::var(i), Aff::var(j)]) * nb.read(aa, &[Aff::var(i), Aff::var(j) - 1])
            / nb.read(dd, &[Aff::var(i), Aff::var(j) - 1]);
    nb.assign(dd, &[Aff::var(i), Aff::var(j)], rdd);
    let rrx2 = nb.read(rx, &[Aff::var(i), Aff::var(j)])
        - nb.read(aa, &[Aff::var(i), Aff::var(j)]) * nb.read(rx, &[Aff::var(i), Aff::var(j) - 1])
            / nb.read(dd, &[Aff::var(i), Aff::var(j) - 1]);
    nb.assign(rx, &[Aff::var(i), Aff::var(j)], rrx2);
    let rry2 = nb.read(ry, &[Aff::var(i), Aff::var(j)])
        - nb.read(aa, &[Aff::var(i), Aff::var(j)]) * nb.read(ry, &[Aff::var(i), Aff::var(j) - 1])
            / nb.read(dd, &[Aff::var(i), Aff::var(j) - 1]);
    nb.assign(ry, &[Aff::var(i), Aff::var(j)], rry2);
    pb.nest(nb.build());

    // Mesh update (no dependences).
    let mut nb = pb.nest_builder("update");
    let j = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
    let i = nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
    let ux = nb.read(x, &[Aff::var(i), Aff::var(j)])
        + nb.read(rx, &[Aff::var(i), Aff::var(j)]) / nb.read(dd, &[Aff::var(i), Aff::var(j)]);
    nb.assign(x, &[Aff::var(i), Aff::var(j)], ux);
    let uy = nb.read(y, &[Aff::var(i), Aff::var(j)])
        + nb.read(ry, &[Aff::var(i), Aff::var(j)]) / nb.read(dd, &[Aff::var(i), Aff::var(j)]);
    nb.assign(y, &[Aff::var(i), Aff::var(j)], uy);
    pb.nest(nb.build());

    pb.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dct_core::{Compiler, Strategy};
    use dct_decomp::Folding;

    #[test]
    fn decomposition_matches_table1() {
        let prog = tomcatv(64, 2);
        let c = Compiler::new(Strategy::Full).compile(&prog).unwrap();
        // Table 1: AA(BLOCK, *) — block rows, one grid dimension.
        assert_eq!(c.decomposition.grid_rank, 1);
        assert_eq!(c.decomposition.foldings, vec![Folding::Block]);
        assert_eq!(c.decomposition.hpf_of(&c.program, 4), "AA(BLOCK, *)");
        assert_eq!(c.decomposition.hpf_of(&c.program, 0), "X(BLOCK, *)");
        // The row-recurrence nest still runs fully parallel (over rows).
        assert_eq!(c.decomposition.comp[1].pipeline_level, None);
        for cd in &c.decomposition.comp {
            assert!(cd.is_distributed(), "every nest runs in parallel");
        }
    }
}
