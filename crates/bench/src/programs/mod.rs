//! The paper's benchmark suite (Section 6), written in the affine IR.
//!
//! Each builder takes a problem size (and, where relevant, a time-step
//! count) so the harness can run paper-scale and scaled-down versions. The
//! kernels reproduce the *loop and reference structure* the paper
//! describes — dependence patterns, FORTRAN loop orders, array shapes —
//! which is what the compiler algorithms and the memory system react to.

pub mod adi;
pub mod erlebacher;
pub mod lu;
pub mod stencil;
pub mod swm256;
pub mod tomcatv;
pub mod vpenta;

pub use adi::adi;
pub use erlebacher::erlebacher;
pub use lu::lu;
pub use stencil::stencil;
pub use swm256::swm256;
pub use tomcatv::tomcatv;
pub use vpenta::vpenta;

use dct_ir::Program;

/// A named benchmark instance (program + the label used in reports).
pub struct Benchmark {
    pub name: &'static str,
    pub program: Program,
}

/// The whole suite at given scale factors (1.0 = paper sizes).
pub fn suite(scale: f64) -> Vec<Benchmark> {
    let s = |n: i64| ((n as f64 * scale).round() as i64).max(16);
    vec![
        Benchmark { name: "vpenta", program: vpenta(s(128), 3) },
        Benchmark { name: "lu", program: lu(s(256)) },
        Benchmark { name: "stencil", program: stencil(s(512), 5) },
        Benchmark { name: "adi", program: adi(s(256), 5) },
        Benchmark { name: "erlebacher", program: erlebacher(s(64)) },
        Benchmark { name: "swm256", program: swm256(s(257), 5) },
        Benchmark { name: "tomcatv", program: tomcatv(s(257), 5) },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_programs_validate() {
        for b in suite(0.125) {
            b.program.validate();
            assert!(!b.program.nests.is_empty(), "{} has no nests", b.name);
            assert!(!b.program.init_nests.is_empty(), "{} has no init", b.name);
        }
    }
}
