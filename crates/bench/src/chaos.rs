//! Deterministic fault injection for the sweep executor.
//!
//! A seeded [`FaultPlan`] names exactly which arrivals at which fault
//! *sites* (worker panic, checkpoint IO error, torn temp file, bit-flipped
//! checkpoint, allocation-cap hit, stuck cell, whole-sweep kill) misbehave;
//! the shared [`FaultInjector`] counts arrivals and fires each planned
//! fault exactly once. Because the schedule is a pure function of the seed
//! and the arrival order is deterministic (the sweep is serial over cells,
//! attempts are ordered), a chaos run is reproducible bit-for-bit: the
//! same seed re-creates the same crashes in the same places.
//!
//! [`run_chaos`] is the end-to-end oracle: run a sweep fault-free, run it
//! again under a fault plan with injected kills and restarts, and assert
//! that the converged chaos sweep is **bit-identical** (outcomes, checksum
//! bits, race/profile fingerprints) to the fault-free one. Self-healing
//! that silently changes results is worse than crashing; this module
//! exists to prove ours does not.
//!
//! This module is panic-free by contract (tier-1 gates it): the one
//! injected panicking site lives in the sweep worker it supervises.

use crate::sweep::{
    run_sweep_supervised, scale_key, Cell, CellOutcome, SweepConfig, SweepReport,
};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

// ------------------------------------------------------------- plan --

/// Where a fault can be injected. Sites are *named points* in the sweep
/// executor; the injector fires when the plan names the current arrival.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FaultSite {
    /// The cell worker panics mid-compute (caught by the supervisor).
    WorkerPanic,
    /// Checkpoint write fails with an IO error before the temp file exists.
    CkptWriteIo,
    /// Crash between temp-file write and rename: a torn `.tmp` is left
    /// behind and the final checkpoint never appears.
    CkptTorn,
    /// One bit of the final checkpoint flips after a successful write
    /// (storage corruption; caught by the content checksum on reload).
    CkptBitFlip,
    /// The final checkpoint is truncated to half its length after a
    /// successful write (caught by the checksum / parser on reload).
    CkptTruncate,
    /// Reading a checkpoint during `--resume` fails with an IO error.
    CkptReadIo,
    /// The simulated allocation cap is hit while setting up the cell.
    AllocCap,
    /// The cell wedges (cooperative spin) until the watchdog cancels it.
    StuckCell,
    /// The whole sweep process dies between cells; the driver restarts
    /// it with `--resume`.
    KillSweep,
    /// One native-backend worker thread panics at startup (the native
    /// cross-check run of a cell; arrives only with `--native`).
    NativeWorkerPanic,
    /// One native-backend worker wedges (cooperative spin) until the
    /// watchdog cancels the attempt (arrives only with `--native`).
    NativeStuck,
    /// Writing a cell into the content-addressed result cache fails with
    /// an IO error (arrives only with `--cache`; the attempt is retried
    /// like a checkpoint-write failure).
    CacheWriteIo,
}

impl FaultSite {
    pub const ALL: [FaultSite; 12] = [
        FaultSite::WorkerPanic,
        FaultSite::CkptWriteIo,
        FaultSite::CkptTorn,
        FaultSite::CkptBitFlip,
        FaultSite::CkptTruncate,
        FaultSite::CkptReadIo,
        FaultSite::AllocCap,
        FaultSite::StuckCell,
        FaultSite::KillSweep,
        FaultSite::NativeWorkerPanic,
        FaultSite::NativeStuck,
        FaultSite::CacheWriteIo,
    ];

    pub fn label(&self) -> &'static str {
        match self {
            FaultSite::WorkerPanic => "worker-panic",
            FaultSite::CkptWriteIo => "ckpt-write-io",
            FaultSite::CkptTorn => "ckpt-torn",
            FaultSite::CkptBitFlip => "ckpt-bit-flip",
            FaultSite::CkptTruncate => "ckpt-truncate",
            FaultSite::CkptReadIo => "ckpt-read-io",
            FaultSite::AllocCap => "alloc-cap",
            FaultSite::StuckCell => "stuck-cell",
            FaultSite::KillSweep => "kill-sweep",
            FaultSite::NativeWorkerPanic => "native-worker-panic",
            FaultSite::NativeStuck => "native-stuck",
            FaultSite::CacheWriteIo => "cache-write-io",
        }
    }

    fn index(&self) -> usize {
        FaultSite::ALL.iter().position(|s| s == self).unwrap_or(0)
    }
}

/// One planned fault: the `occurrence`-th arrival (0-based) at `site`
/// misbehaves. Each planned fault fires at most once.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Fault {
    pub site: FaultSite,
    pub occurrence: u64,
}

/// A deterministic, seeded fault schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    pub seed: u64,
    pub faults: Vec<Fault>,
}

/// The splitmix64 generator: tiny, seedable, good enough for schedules.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// Generate `n` faults from `seed`. Sites are drawn from the pool of
    /// *always-arriving* sites (compute and checkpoint-write paths run for
    /// every cell), plus at most two whole-sweep kills, so a generated
    /// plan actually exercises the executor instead of naming arrivals
    /// that never happen. Per-site occurrences are assigned densely
    /// (0, 1, 2, ...): the first arrivals fault, later ones succeed —
    /// which is exactly the shape a consumed-once retry must survive.
    pub fn generate(seed: u64, n: usize) -> FaultPlan {
        // CkptReadIo is deliberately excluded: it only arrives on resume
        // loads, which only happen after a kill. The native sites only
        // arrive when the sweep runs the native cross-check, and
        // CacheWriteIo only when the sweep writes a result cache, so they
        // too are planned explicitly (tests, `--native` / `--cache`
        // chaos runs) rather than drawn blind.
        const POOL: [FaultSite; 8] = [
            FaultSite::WorkerPanic,
            FaultSite::CkptWriteIo,
            FaultSite::CkptTorn,
            FaultSite::CkptBitFlip,
            FaultSite::CkptTruncate,
            FaultSite::AllocCap,
            FaultSite::StuckCell,
            FaultSite::KillSweep,
        ];
        let mut state = seed ^ 0xd6e8_feb8_6659_fd93;
        let mut next_occ = [0u64; FaultSite::ALL.len()];
        let mut kills = 0usize;
        let mut faults = Vec::with_capacity(n);
        while faults.len() < n {
            let r = splitmix64(&mut state);
            let mut site = POOL[(r % POOL.len() as u64) as usize];
            if site == FaultSite::KillSweep {
                if kills >= 2 {
                    // Re-draw deterministically: map the kill onto the
                    // compute pool instead.
                    site = POOL[(r % (POOL.len() as u64 - 1)) as usize];
                } else {
                    kills += 1;
                }
            }
            let occ = next_occ[site.index()];
            next_occ[site.index()] += 1;
            faults.push(Fault { site, occurrence: occ });
        }
        FaultPlan { seed, faults }
    }

    /// How many whole-sweep kills the plan contains (the driver sizes its
    /// restart budget from this).
    pub fn kills(&self) -> usize {
        self.faults.iter().filter(|f| f.site == FaultSite::KillSweep).count()
    }
}

// --------------------------------------------------------- injector --

/// One fault that actually fired, with where it landed.
#[derive(Clone, Debug)]
pub struct FiredFault {
    pub site: FaultSite,
    pub occurrence: u64,
    /// Human context: which cell / attempt / file the arrival was.
    pub context: String,
}

#[derive(Debug, Default)]
struct InjectorState {
    /// Arrival counter per site (indexed by `FaultSite::index`).
    arrivals: [u64; FaultSite::ALL.len()],
    /// Planned faults not yet fired.
    pending: Vec<Fault>,
    /// Log of fired faults, in firing order.
    fired: Vec<FiredFault>,
}

/// Shared, thread-safe fault injector: counts arrivals per site and fires
/// each planned fault exactly once. One injector spans a whole chaos run
/// (including restarts), so occurrence indices are global and the fault
/// schedule is deterministic end to end.
#[derive(Debug)]
pub struct FaultInjector {
    state: Mutex<InjectorState>,
}

impl FaultInjector {
    pub fn new(plan: &FaultPlan) -> FaultInjector {
        FaultInjector {
            state: Mutex::new(InjectorState {
                arrivals: [0; FaultSite::ALL.len()],
                pending: plan.faults.clone(),
                fired: Vec::new(),
            }),
        }
    }

    /// Record one arrival at `site`; true when a planned fault fires here.
    /// `context` is logged so the report can say where each fault landed.
    pub fn fire(&self, site: FaultSite, context: &str) -> bool {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let occ = st.arrivals[site.index()];
        st.arrivals[site.index()] += 1;
        let hit = st.pending.iter().position(|f| f.site == site && f.occurrence == occ);
        match hit {
            Some(i) => {
                st.pending.remove(i);
                st.fired.push(FiredFault { site, occurrence: occ, context: context.to_string() });
                true
            }
            None => false,
        }
    }

    /// Every fault fired so far, in firing order.
    pub fn fired(&self) -> Vec<FiredFault> {
        self.state.lock().unwrap_or_else(|p| p.into_inner()).fired.clone()
    }

    /// Planned faults that have not fired (sites never reached).
    pub fn unfired(&self) -> Vec<Fault> {
        self.state.lock().unwrap_or_else(|p| p.into_inner()).pending.clone()
    }

    /// Total arrivals recorded at `site`.
    pub fn arrivals(&self, site: FaultSite) -> u64 {
        self.state.lock().unwrap_or_else(|p| p.into_inner()).arrivals[site.index()]
    }
}

// ------------------------------------------------------ retry ladder --

/// How a failed cell is retried: bounded attempts with seeded exponential
/// backoff, stepping down a degradation ladder of *bit-identical* rungs.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Attempts per cell before quarantine (>= 1).
    pub max_attempts: usize,
    /// Base backoff between attempts, milliseconds.
    pub backoff_base_ms: u64,
    /// Backoff ceiling, milliseconds.
    pub backoff_cap_ms: u64,
    /// Seed of the backoff jitter (deterministic per cell x attempt).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { max_attempts: 4, backoff_base_ms: 10, backoff_cap_ms: 400, seed: 1 }
    }
}

/// Seeded exponential backoff with deterministic jitter: the same policy,
/// cell, and attempt always wait the same number of milliseconds.
pub fn backoff_ms(p: &RetryPolicy, cell: &str, attempt: usize) -> u64 {
    // `attempt` is clamped so the shift can neither overflow nor wrap;
    // the cap below bounds the wait regardless.
    let exp = p.backoff_base_ms.min(1 << 20) << attempt.min(16);
    let mut state = p.seed ^ crate::sweep::fnv64(cell.as_bytes()) ^ (attempt as u64).wrapping_mul(0x9e37);
    let jitter = splitmix64(&mut state) % p.backoff_base_ms.max(1);
    exp.saturating_add(jitter).min(p.backoff_cap_ms)
}

/// The degradation ladder a retried cell walks. Every rung produces
/// **bit-identical simulated results** — only host-side mechanics change
/// (intra-cell threads, strided fast path) — so a recovery can never
/// silently alter the science.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RetryRung {
    /// The configured options, as the first attempt ran them.
    Configured,
    /// Half the intra-cell threads (a wedged shard may be scheduling-
    /// dependent).
    ReducedThreads,
    /// Strided fast path off, reduced threads (rules out the segment
    /// engine).
    NoFastPath,
    /// The floor: one thread, general walk — the reference interpreter.
    ReferenceWalk,
}

impl RetryRung {
    pub const LADDER: [RetryRung; 4] = [
        RetryRung::Configured,
        RetryRung::ReducedThreads,
        RetryRung::NoFastPath,
        RetryRung::ReferenceWalk,
    ];

    /// The rung for the `attempt`-th try (0-based); attempts past the
    /// floor stay on the floor.
    pub fn for_attempt(attempt: usize) -> RetryRung {
        RetryRung::LADDER[attempt.min(RetryRung::LADDER.len() - 1)]
    }

    /// (intra-cell threads, fast_path) this rung runs with, given the
    /// configured thread count.
    pub fn params(&self, threads: usize) -> (usize, bool) {
        let t = threads.max(1);
        match self {
            RetryRung::Configured => (t, true),
            RetryRung::ReducedThreads => ((t / 2).max(1), true),
            RetryRung::NoFastPath => ((t / 2).max(1), false),
            RetryRung::ReferenceWalk => (1, false),
        }
    }

    pub fn label(&self) -> &'static str {
        match self {
            RetryRung::Configured => "configured",
            RetryRung::ReducedThreads => "reduced-threads",
            RetryRung::NoFastPath => "no-fast-path",
            RetryRung::ReferenceWalk => "reference-walk",
        }
    }
}

// ------------------------------------------------------ chaos driver --

/// Configuration of one chaos run (see [`run_chaos`]).
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// Seed of the fault schedule (and of retry backoff jitter).
    pub seed: u64,
    /// Number of faults to plan.
    pub faults: usize,
    /// Processor count of the parallel cells.
    pub procs: usize,
    /// Problem-size scale.
    pub scale: f64,
    /// Root output directory; the fault-free sweep checkpoints under
    /// `clean/`, the chaos sweep under `chaos/`.
    pub out_dir: PathBuf,
    /// Restrict to these benchmarks (`None` = whole suite).
    pub only: Option<Vec<String>>,
    /// Intra-cell threads of the configured rung.
    pub threads: usize,
    /// Run the race detector in every cell (its report joins the
    /// bit-identity fingerprint).
    pub race_check: bool,
    /// Run the memory profiler in every cell (its rows join the
    /// bit-identity fingerprint).
    pub profile: bool,
    /// Watchdog budget per attempt, seconds (stuck cells are cancelled
    /// at the next sync-point boundary after this).
    pub stuck_wall_secs: f64,
    /// Cross-check every cell's checksum against the native threaded
    /// backend (joins the bit-identity contract; native fault sites
    /// only arrive when this is on).
    pub native_check: bool,
    /// Give each sweep a content-addressed result cache (`cache-clean/`
    /// and `cache-chaos/` under the output root — separate stores, so
    /// injected compute faults still exercise the compute path). The
    /// `cache-write-io` fault site only arrives when this is on.
    pub cache: bool,
}

impl ChaosConfig {
    pub fn new(seed: u64, faults: usize, out_dir: impl Into<PathBuf>) -> ChaosConfig {
        ChaosConfig {
            seed,
            faults,
            procs: 8,
            scale: 0.1,
            out_dir: out_dir.into(),
            only: None,
            threads: 2,
            race_check: true,
            profile: false,
            stuck_wall_secs: 2.0,
            native_check: false,
            cache: false,
        }
    }
}

/// One divergence between the chaos sweep and the fault-free sweep.
#[derive(Clone, Debug)]
pub struct ChaosDiff {
    pub cell: String,
    pub detail: String,
}

/// Everything a chaos run learned.
#[derive(Debug)]
pub struct ChaosReport {
    pub plan: FaultPlan,
    pub fired: Vec<FiredFault>,
    pub unfired: Vec<Fault>,
    /// Sweep incarnations run (1 = no kill fired).
    pub incarnations: usize,
    /// The fault-free reference sweep.
    pub clean: SweepReport,
    /// The final (converged) chaos sweep.
    pub chaos: SweepReport,
    /// Accumulated over all incarnations.
    pub retries: u64,
    pub cancelled: u64,
    pub quarantined: u64,
    pub corrupt: usize,
    pub tmp_cleaned: usize,
    /// Bit-identity divergences (empty = converged identical).
    pub diffs: Vec<ChaosDiff>,
}

impl ChaosReport {
    /// True when the chaos sweep converged bit-identical to the clean one.
    pub fn identical(&self) -> bool {
        self.diffs.is_empty()
    }
}

fn cell_label(c: &Cell) -> String {
    format!("{}/{} p{} s{}", c.bench, c.kind, c.procs, scale_key(c.scale))
}

fn outcome_label(o: &CellOutcome) -> String {
    match o {
        CellOutcome::Cycles(n) => format!("cycles {n}"),
        CellOutcome::Timeout => "timeout".to_string(),
        CellOutcome::Failed(e) => format!("failed: {e}"),
        CellOutcome::Quarantined(e) => format!("quarantined: {e}"),
    }
}

/// Compare two converged sweeps cell by cell: outcomes, checksum bits,
/// and race/profile fingerprints must all match exactly.
pub fn diff_sweeps(clean: &[Cell], chaos: &[Cell]) -> Vec<ChaosDiff> {
    let mut diffs = Vec::new();
    for c in clean {
        let Some(x) = chaos.iter().find(|x| x.key() == c.key()) else {
            diffs.push(ChaosDiff {
                cell: cell_label(c),
                detail: "missing from chaos sweep".to_string(),
            });
            continue;
        };
        if x.outcome != c.outcome {
            diffs.push(ChaosDiff {
                cell: cell_label(c),
                detail: format!(
                    "outcome differs: clean {} vs chaos {}",
                    outcome_label(&c.outcome),
                    outcome_label(&x.outcome)
                ),
            });
        }
        if x.checksum_bits != c.checksum_bits {
            diffs.push(ChaosDiff {
                cell: cell_label(c),
                detail: format!(
                    "checksum bits differ: clean {:?} vs chaos {:?}",
                    c.checksum_bits, x.checksum_bits
                ),
            });
        }
        if x.fingerprint != c.fingerprint {
            diffs.push(ChaosDiff {
                cell: cell_label(c),
                detail: format!(
                    "race/profile fingerprint differs: clean {:?} vs chaos {:?}",
                    c.fingerprint, x.fingerprint
                ),
            });
        }
    }
    for x in chaos {
        if !clean.iter().any(|c| c.key() == x.key()) {
            diffs.push(ChaosDiff {
                cell: cell_label(x),
                detail: "extra cell not in clean sweep".to_string(),
            });
        }
    }
    diffs
}

fn sweep_config(cfg: &ChaosConfig, sub: &str) -> SweepConfig {
    let mut sc = SweepConfig::new(cfg.procs, cfg.scale, cfg.out_dir.join(sub));
    sc.only = cfg.only.clone();
    sc.threads = cfg.threads.max(1);
    sc.race_check = cfg.race_check;
    sc.profile = cfg.profile;
    sc.stuck_wall_secs = Some(cfg.stuck_wall_secs);
    sc.native_check = cfg.native_check;
    sc
}

/// The end-to-end chaos oracle. Runs the sweep fault-free; then runs it
/// under the seeded fault plan, restarting with `--resume` every time an
/// injected kill takes the sweep down; then asserts the converged chaos
/// results are bit-identical to the fault-free ones.
pub fn run_chaos(cfg: &ChaosConfig) -> std::io::Result<ChaosReport> {
    // Stale checkpoints (or cache entries) from a previous chaos run
    // would be resumed into incarnation 2+ and break determinism: start
    // from scratch.
    for sub in ["clean", "chaos", "cache-clean", "cache-chaos"] {
        let d = cfg.out_dir.join(sub);
        if d.exists() {
            std::fs::remove_dir_all(&d)?;
        }
    }

    // Reference sweep: no faults, no resume, default retry policy.
    let mut clean_cfg = sweep_config(cfg, "clean");
    clean_cfg.retry.seed = cfg.seed;
    if cfg.cache {
        clean_cfg.cache = Some(Arc::new(crate::cache::ResultStore::open(
            cfg.out_dir.join("cache-clean"),
            None,
        )?));
    }
    let clean = run_sweep_supervised(&clean_cfg)?;

    // Chaos sweep: seeded plan, one injector spanning every incarnation.
    let plan = FaultPlan::generate(cfg.seed, cfg.faults);
    let injector = Arc::new(FaultInjector::new(&plan));
    let mut chaos_cfg = sweep_config(cfg, "chaos");
    chaos_cfg.injector = Some(injector.clone());
    chaos_cfg.retry.seed = cfg.seed;
    if cfg.cache {
        chaos_cfg.cache = Some(Arc::new(crate::cache::ResultStore::open(
            cfg.out_dir.join("cache-chaos"),
            None,
        )?));
    }
    // Every injected compute fault is consumed once, so `faults + 1`
    // attempts always reach a fault-free rung; +1 more for headroom
    // (a save fault can burn an attempt of an already-computed cell).
    chaos_cfg.retry.max_attempts = cfg.faults + 2;

    let max_incarnations = plan.kills() + 2;
    let mut incarnations = 0;
    let (mut retries, mut cancelled, mut quarantined) = (0u64, 0u64, 0u64);
    let (mut corrupt, mut tmp_cleaned) = (0usize, 0usize);
    let chaos = loop {
        incarnations += 1;
        chaos_cfg.resume = incarnations > 1;
        let rep = run_sweep_supervised(&chaos_cfg)?;
        retries += rep.retries;
        cancelled += rep.cancelled;
        quarantined += rep.quarantined;
        corrupt += rep.corrupt.len();
        tmp_cleaned += rep.tmp_cleaned;
        if !rep.killed || incarnations >= max_incarnations {
            break rep;
        }
    };

    let diffs = diff_sweeps(&clean.cells, &chaos.cells);
    Ok(ChaosReport {
        plan,
        fired: injector.fired(),
        unfired: injector.unfired(),
        incarnations,
        clean,
        chaos,
        retries,
        cancelled,
        quarantined,
        corrupt,
        tmp_cleaned,
        diffs,
    })
}

/// Render a chaos report for humans.
pub fn render_chaos(r: &ChaosReport) -> String {
    let mut out = format!(
        "chaos: seed {}, {} planned fault(s), {} fired, {} incarnation(s)\n",
        r.plan.seed,
        r.plan.faults.len(),
        r.fired.len(),
        r.incarnations
    );
    for f in &r.fired {
        out.push_str(&format!("  fired  {:>13} #{} at {}\n", f.site.label(), f.occurrence, f.context));
    }
    for f in &r.unfired {
        out.push_str(&format!("  unfired {:>12} #{} (site never reached)\n", f.site.label(), f.occurrence));
    }
    out.push_str(&format!(
        "  recovery: {} retr{}, {} watchdog cancel(s), {} quarantine(s), {} corrupt checkpoint(s), {} stale tmp cleaned\n",
        r.retries,
        if r.retries == 1 { "y" } else { "ies" },
        r.cancelled,
        r.quarantined,
        r.corrupt,
        r.tmp_cleaned
    ));
    if r.identical() {
        out.push_str(&format!(
            "  verdict: converged BIT-IDENTICAL to the fault-free sweep ({} cells)\n",
            r.clean.cells.len()
        ));
    } else {
        out.push_str(&format!("  verdict: DIVERGED in {} cell(s):\n", r.diffs.len()));
        for d in &r.diffs {
            out.push_str(&format!("    {}: {}\n", d.cell, d.detail));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic_and_seed_sensitive() {
        let a = FaultPlan::generate(42, 8);
        let b = FaultPlan::generate(42, 8);
        assert_eq!(a, b);
        let c = FaultPlan::generate(43, 8);
        assert_ne!(a, c, "different seeds should give different schedules");
        assert!(a.kills() <= 2, "kill cap violated: {}", a.kills());
    }

    #[test]
    fn injector_fires_each_fault_exactly_once() {
        let plan = FaultPlan {
            seed: 0,
            faults: vec![
                Fault { site: FaultSite::WorkerPanic, occurrence: 1 },
                Fault { site: FaultSite::CkptWriteIo, occurrence: 0 },
            ],
        };
        let inj = FaultInjector::new(&plan);
        assert!(!inj.fire(FaultSite::WorkerPanic, "a"), "occ 0 not planned");
        assert!(inj.fire(FaultSite::WorkerPanic, "b"), "occ 1 planned");
        assert!(!inj.fire(FaultSite::WorkerPanic, "c"), "consumed once");
        assert!(inj.fire(FaultSite::CkptWriteIo, "d"));
        assert_eq!(inj.fired().len(), 2);
        assert_eq!(inj.arrivals(FaultSite::WorkerPanic), 3);
        assert!(inj.unfired().is_empty());
    }

    #[test]
    fn backoff_is_deterministic_bounded_and_growing() {
        let p = RetryPolicy { max_attempts: 5, backoff_base_ms: 10, backoff_cap_ms: 100, seed: 7 };
        let a0 = backoff_ms(&p, "lu/full", 0);
        assert_eq!(a0, backoff_ms(&p, "lu/full", 0), "same inputs, same wait");
        let a3 = backoff_ms(&p, "lu/full", 3);
        assert!(a3 >= a0, "backoff should not shrink: {a0} -> {a3}");
        for attempt in 0..20 {
            assert!(backoff_ms(&p, "x", attempt) <= 100, "cap violated");
        }
    }

    #[test]
    fn ladder_only_varies_bit_identical_knobs() {
        // threads and fast_path are the only knobs a rung may touch —
        // both are proven bit-identical elsewhere. The floor is the
        // reference walk.
        assert_eq!(RetryRung::for_attempt(0).params(4), (4, true));
        assert_eq!(RetryRung::for_attempt(1).params(4), (2, true));
        assert_eq!(RetryRung::for_attempt(2).params(4), (2, false));
        assert_eq!(RetryRung::for_attempt(3).params(4), (1, false));
        assert_eq!(RetryRung::for_attempt(99).params(4), (1, false), "past the floor stays on it");
        assert_eq!(RetryRung::for_attempt(1).params(1), (1, true), "threads never reach 0");
    }
}
