//! Regenerating the paper's figures and tables: speedup curves per
//! compiler strategy across processor counts, and the Table 1 summary.

use crate::programs;
use dct_core::{sequential_cycles, speedup_curve, Compiler, SpeedupPoint, Strategy};
use dct_ir::Program;

/// Processor counts used in the paper's figures (1..32; 31 added because
/// LU's conflict pathology makes 31 vs 32 a headline data point).
pub const PAPER_PROCS: &[usize] = &[1, 2, 4, 8, 12, 16, 20, 24, 28, 31, 32];

/// A figure specification: which benchmark, at which size.
#[derive(Clone, Debug)]
pub struct FigureSpec {
    pub id: &'static str,
    pub benchmark: &'static str,
    /// Size label as reported by the paper (e.g. "512x512").
    pub size_label: String,
    pub program: Program,
}

/// One strategy's speedup curve.
#[derive(Clone, Debug)]
pub struct StrategyCurve {
    pub strategy: Strategy,
    pub points: Vec<SpeedupPoint>,
}

/// A regenerated figure: the three curves the paper plots.
#[derive(Clone, Debug)]
pub struct FigureResult {
    pub spec_id: String,
    pub benchmark: String,
    pub size_label: String,
    pub seq_cycles: u64,
    pub curves: Vec<StrategyCurve>,
}

impl FigureResult {
    /// Speedup of `strategy` at the largest processor count.
    pub fn final_speedup(&self, strategy: Strategy) -> f64 {
        self.curves
            .iter()
            .find(|c| c.strategy == strategy)
            .and_then(|c| c.points.last())
            .map(|p| p.speedup)
            .unwrap_or(0.0)
    }

    /// Speedup of `strategy` at processor count `p`.
    pub fn speedup_at(&self, strategy: Strategy, p: usize) -> Option<f64> {
        self.curves
            .iter()
            .find(|c| c.strategy == strategy)?
            .points
            .iter()
            .find(|x| x.procs == p)
            .map(|x| x.speedup)
    }

    /// Render as the rows the paper plots: one line per processor count
    /// with the three speedups.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# {} — {} ({})\n",
            self.spec_id, self.benchmark, self.size_label
        ));
        out.push_str("procs   base  comp-decomp  +data-transform\n");
        let n = self.curves[0].points.len();
        for k in 0..n {
            let p = self.curves[0].points[k].procs;
            let row: Vec<String> = self
                .curves
                .iter()
                .map(|c| format!("{:8.2}", c.points[k].speedup))
                .collect();
            out.push_str(&format!("{p:5} {}\n", row.join(" ")));
        }
        out
    }
}

/// Build a figure spec by id ("fig4", "fig6", "fig6b", "fig8", "fig10",
/// "fig10b", "fig11", "fig12", "fig13"), at `scale` of the paper size.
pub fn figure(id: &str, scale: f64) -> Option<FigureSpec> {
    let s = |n: i64| ((n as f64 * scale).round() as i64).max(16);
    let (benchmark, size_label, program): (&'static str, String, Program) = match id {
        "fig4" => ("vpenta", format!("{0}x{0}", s(128)), programs::vpenta(s(128), 3)),
        "fig6" => ("lu", format!("{0}x{0}", s(256)), programs::lu(s(256))),
        "fig6b" => ("lu", format!("{0}x{0}", s(1024)), programs::lu(s(1024))),
        "fig8" => ("stencil", format!("{0}x{0}", s(512)), programs::stencil(s(512), 5)),
        "fig10" => ("adi", format!("{0}x{0}", s(256)), programs::adi(s(256), 5)),
        "fig10b" => ("adi", format!("{0}x{0}", s(1024)), programs::adi(s(1024), 5)),
        "fig11" => ("erlebacher", format!("{0}^3", s(64)), programs::erlebacher(s(64))),
        "fig12" => ("swm256", format!("{0}x{0}", s(257)), programs::swm256(s(257), 5)),
        "fig13" => ("tomcatv", format!("{0}x{0}", s(257)), programs::tomcatv(s(257), 5)),
        _ => return None,
    };
    Some(FigureSpec { id: Box::leak(id.to_string().into_boxed_str()), benchmark, size_label, program })
}

/// Every figure id, in paper order.
pub const ALL_FIGURES: &[&str] =
    &["fig4", "fig6", "fig6b", "fig8", "fig10", "fig10b", "fig11", "fig12", "fig13"];

/// Run a figure: the three strategies across `procs_list`.
pub fn run_figure(spec: &FigureSpec, procs_list: &[usize]) -> FigureResult {
    let params = spec.program.default_params();
    let seq = sequential_cycles(&spec.program, &params);
    let curves = Strategy::ALL
        .iter()
        .map(|&strategy| StrategyCurve {
            strategy,
            points: speedup_curve(&spec.program, strategy, procs_list, &params, seq),
        })
        .collect();
    FigureResult {
        spec_id: spec.id.to_string(),
        benchmark: spec.benchmark.to_string(),
        size_label: spec.size_label.clone(),
        seq_cycles: seq,
        curves,
    }
}

/// Parallel variant of [`run_figure`]: simulation points are independent,
/// so they are swept with a scoped worker pool.
pub fn run_figure_parallel(spec: &FigureSpec, procs_list: &[usize], workers: usize) -> FigureResult {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    let params = spec.program.default_params();
    let seq = sequential_cycles(&spec.program, &params);

    // Task list: (strategy index, procs index).
    let tasks: Vec<(usize, usize)> = (0..Strategy::ALL.len())
        .flat_map(|s| (0..procs_list.len()).map(move |k| (s, k)))
        .collect();
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Vec<Option<SpeedupPoint>>>> =
        Mutex::new(vec![vec![None; procs_list.len()]; Strategy::ALL.len()]);

    std::thread::scope(|scope| {
        for _ in 0..workers.max(1) {
            scope.spawn(|| {
                // Each worker compiles lazily per strategy (compilation is
                // cheap relative to simulation).
                let mut compiled: Vec<Option<(Compiler, dct_core::Compiled)>> =
                    (0..Strategy::ALL.len()).map(|_| None).collect();
                loop {
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    if t >= tasks.len() {
                        break;
                    }
                    let (si, ki) = tasks[t];
                    let strategy = Strategy::ALL[si];
                    if compiled[si].is_none() {
                        let c = Compiler::new(strategy);
                        let cc = c.compile(&spec.program);
                        compiled[si] = Some((c, cc));
                    }
                    let (c, cc) = compiled[si].as_ref().unwrap();
                    let procs = procs_list[ki];
                    let r = c.simulate(cc, procs, &params);
                    let point = SpeedupPoint {
                        procs,
                        cycles: r.cycles,
                        speedup: seq as f64 / r.cycles as f64,
                    };
                    results.lock().unwrap()[si][ki] = Some(point);
                }
            });
        }
    });

    let results = results.into_inner().unwrap();
    let curves = Strategy::ALL
        .iter()
        .enumerate()
        .map(|(si, &strategy)| StrategyCurve {
            strategy,
            points: results[si].iter().map(|p| p.expect("missing point")).collect(),
        })
        .collect();
    FigureResult {
        spec_id: spec.id.to_string(),
        benchmark: spec.benchmark.to_string(),
        size_label: spec.size_label.clone(),
        seq_cycles: seq,
        curves,
    }
}

/// One row of Table 1.
#[derive(Clone, Debug)]
pub struct Table1Row {
    pub program: String,
    pub base_speedup: f64,
    pub full_speedup: f64,
    pub comp_decomp_critical: bool,
    pub data_transform_critical: bool,
    pub decompositions: Vec<String>,
}

/// Regenerate Table 1 at `procs` processors and `scale` of the paper
/// sizes.
pub fn table1(procs: usize, scale: f64) -> Vec<Table1Row> {
    let suite = programs::suite(scale);
    suite
        .iter()
        .map(|b| {
            let params = b.program.default_params();
            let seq = sequential_cycles(&b.program, &params);
            let run = |strategy: Strategy| {
                let c = Compiler::new(strategy);
                let compiled = c.compile(&b.program);
                seq as f64 / c.simulate(&compiled, procs, &params).cycles as f64
            };
            let base = run(Strategy::Base);
            let comp = run(Strategy::CompDecomp);
            let full = run(Strategy::Full);
            let compiled = Compiler::new(Strategy::Full).compile(&b.program);
            // A technique is "critical" when removing it costs >= 15%.
            let comp_critical = comp > base * 1.15 || full > base * 1.15 && comp * 1.15 < full;
            let data_critical = full > comp * 1.15;
            let decos: Vec<String> = compiled
                .decomposition
                .hpf_all(&compiled.program)
                .into_iter()
                .filter(|d| !d.contains("(*") || d.contains("BLOCK") || d.contains("CYCLIC"))
                .collect();
            Table1Row {
                program: b.name.to_string(),
                base_speedup: base,
                full_speedup: full,
                comp_decomp_critical: comp_critical,
                data_transform_critical: data_critical,
                decompositions: decos,
            }
        })
        .collect()
}

/// Parallel variant of [`table1`]: the 4 simulations per benchmark
/// (sequential reference + three strategies) are independent, so all
/// `suite.len() * 4` of them are swept with a scoped worker pool. Rows
/// are assembled in suite order afterwards — the output is identical to
/// the sequential version.
pub fn table1_parallel(procs: usize, scale: f64, workers: usize) -> Vec<Table1Row> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    if workers <= 1 {
        // Single-core host: the pool is pure overhead.
        return table1(procs, scale);
    }
    let suite = programs::suite(scale);
    // Task (b, k): benchmark b, run k = 0 sequential reference, else
    // Strategy::ALL[k - 1] at `procs`.
    let tasks: Vec<(usize, usize)> =
        (0..suite.len()).flat_map(|b| (0..4).map(move |k| (b, k))).collect();
    let next = AtomicUsize::new(0);
    let cycles: Mutex<Vec<[u64; 4]>> = Mutex::new(vec![[0; 4]; suite.len()]);

    std::thread::scope(|scope| {
        for _ in 0..workers.max(1) {
            scope.spawn(|| loop {
                let t = next.fetch_add(1, Ordering::Relaxed);
                if t >= tasks.len() {
                    break;
                }
                let (b, k) = tasks[t];
                let bench = &suite[b];
                let params = bench.program.default_params();
                let c = match k {
                    0 => sequential_cycles(&bench.program, &params),
                    _ => {
                        let comp = Compiler::new(Strategy::ALL[k - 1]);
                        let compiled = comp.compile(&bench.program);
                        comp.simulate(&compiled, procs, &params).cycles
                    }
                };
                cycles.lock().unwrap()[b][k] = c;
            });
        }
    });

    let cycles = cycles.into_inner().unwrap();
    suite
        .iter()
        .zip(&cycles)
        .map(|(b, cy)| {
            let seq = cy[0];
            let [base, comp, full] =
                [cy[1], cy[2], cy[3]].map(|c| seq as f64 / c as f64);
            let compiled = Compiler::new(Strategy::Full).compile(&b.program);
            // A technique is "critical" when removing it costs >= 15%.
            let comp_critical = comp > base * 1.15 || full > base * 1.15 && comp * 1.15 < full;
            let data_critical = full > comp * 1.15;
            let decos: Vec<String> = compiled
                .decomposition
                .hpf_all(&compiled.program)
                .into_iter()
                .filter(|d| !d.contains("(*") || d.contains("BLOCK") || d.contains("CYCLIC"))
                .collect();
            Table1Row {
                program: b.name.to_string(),
                base_speedup: base,
                full_speedup: full,
                comp_decomp_critical: comp_critical,
                data_transform_critical: data_critical,
                decompositions: decos,
            }
        })
        .collect()
}

/// Render Table 1.
pub fn render_table1(rows: &[Table1Row], procs: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Table 1: summary at {procs} processors (speedups vs best sequential)\n"
    ));
    out.push_str("program      base   fully-opt  comp-critical  data-critical  decompositions\n");
    for r in rows {
        out.push_str(&format!(
            "{:<12} {:>5.1}  {:>8.1}   {:^13} {:^14}  {}\n",
            r.program,
            r.base_speedup,
            r.full_speedup,
            if r.comp_decomp_critical { "yes" } else { "-" },
            if r.data_transform_critical { "yes" } else { "-" },
            r.decompositions.join("  ")
        ));
    }
    out
}
