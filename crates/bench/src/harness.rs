//! Regenerating the paper's figures and tables: speedup curves per
//! compiler strategy across processor counts, and the Table 1 summary.
//!
//! Sweeps are failure-tolerant: a cell whose compilation or simulation
//! fails (or whose worker panics) becomes a reported failed cell instead
//! of poisoning the whole sweep.

use crate::programs;
use dct_core::{sequential_cycles, speedup_curve, Compiler, SpeedupPoint, Strategy};
use dct_ir::{panic_message, DctError, DctResult, Phase, Program};
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;

/// Atomically and durably write a result artifact: temp file in the same
/// directory, write, fsync the file, rename over the target, fsync the
/// directory. A crash at any instant leaves either the previous contents
/// or the complete new contents — never a torn file — and after the
/// rename the data has actually reached the disk, not just the page
/// cache. Every JSON artifact the harness emits goes through here.
pub fn atomic_write_sync(path: &Path, data: &[u8]) -> std::io::Result<()> {
    let dir = match path.parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    std::fs::create_dir_all(&dir)?;
    let name = path.file_name().map(|n| n.to_string_lossy().to_string()).unwrap_or_default();
    let tmp = dir.join(format!(".{name}.tmp"));
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(data)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    // Durability of the rename itself needs the directory synced; on
    // platforms where opening a directory fails this stays best-effort
    // (the rename is still atomic).
    if let Ok(d) = std::fs::File::open(&dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Processor counts used in the paper's figures (1..32; 31 added because
/// LU's conflict pathology makes 31 vs 32 a headline data point).
pub const PAPER_PROCS: &[usize] = &[1, 2, 4, 8, 12, 16, 20, 24, 28, 31, 32];

/// How the host's threads are split between concurrently-running
/// simulation cells (a sweep's worker pool) and the sharded engine
/// inside each cell (`SimOptions::threads`). The invariant every sweep
/// maintains: `workers * intra <= host` — the two layers share one
/// budget instead of multiplying into oversubscription.
#[derive(Clone, Copy, Debug)]
pub struct ThreadBudget {
    /// Host threads available (`std::thread::available_parallelism`).
    pub host: usize,
    /// Simulation cells in flight at once.
    pub workers: usize,
    /// Sharded-engine threads inside each cell.
    pub intra: usize,
}

impl ThreadBudget {
    /// Clamp a requested worker count and optional pinned intra-cell
    /// thread count to the host. A pinned `intra` wins (the workers give
    /// way — this is how `repro --threads 4` forces the parallel engine
    /// even on a small host); otherwise workers get the threads and the
    /// remainder goes intra-cell.
    pub fn clamp(workers: usize, intra: Option<usize>) -> ThreadBudget {
        let host = dct_spmd::default_threads().max(1);
        match intra {
            Some(i) => {
                let i = i.max(1);
                ThreadBudget { host, workers: (host / i).clamp(1, workers.max(1)), intra: i }
            }
            None => {
                let w = workers.clamp(1, host);
                ThreadBudget { host, workers: w, intra: (host / w).max(1) }
            }
        }
    }

    /// Everything on one cell: no worker pool, the whole budget (or the
    /// pinned count) goes to the sharded engine.
    pub fn single_cell(intra: Option<usize>) -> ThreadBudget {
        let host = dct_spmd::default_threads().max(1);
        ThreadBudget { host, workers: 1, intra: intra.unwrap_or(host).max(1) }
    }
}

impl std::fmt::Display for ThreadBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "thread budget: {} cell(s) in flight x {} intra-cell thread(s) on {} host thread(s)",
            self.workers, self.intra, self.host
        )
    }
}

/// A figure specification: which benchmark, at which size.
#[derive(Clone, Debug)]
pub struct FigureSpec {
    pub id: &'static str,
    pub benchmark: &'static str,
    /// Size label as reported by the paper (e.g. "512x512").
    pub size_label: String,
    pub program: Program,
}

/// One strategy's speedup curve.
#[derive(Clone, Debug)]
pub struct StrategyCurve {
    pub strategy: Strategy,
    pub points: Vec<SpeedupPoint>,
}

/// A regenerated figure: the three curves the paper plots.
#[derive(Clone, Debug)]
pub struct FigureResult {
    pub spec_id: String,
    pub benchmark: String,
    pub size_label: String,
    pub seq_cycles: u64,
    pub curves: Vec<StrategyCurve>,
}

impl FigureResult {
    /// Speedup of `strategy` at the largest processor count.
    pub fn final_speedup(&self, strategy: Strategy) -> f64 {
        self.curves
            .iter()
            .find(|c| c.strategy == strategy)
            .and_then(|c| c.points.last())
            .map(|p| p.speedup)
            .unwrap_or(0.0)
    }

    /// Speedup of `strategy` at processor count `p`.
    pub fn speedup_at(&self, strategy: Strategy, p: usize) -> Option<f64> {
        self.curves
            .iter()
            .find(|c| c.strategy == strategy)?
            .points
            .iter()
            .find(|x| x.procs == p)
            .map(|x| x.speedup)
    }

    /// Render as the rows the paper plots: one line per processor count
    /// with the three speedups.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# {} — {} ({})\n",
            self.spec_id, self.benchmark, self.size_label
        ));
        out.push_str("procs   base  comp-decomp  +data-transform\n");
        let n = self.curves[0].points.len();
        for k in 0..n {
            let p = self.curves[0].points[k].procs;
            let row: Vec<String> = self
                .curves
                .iter()
                .map(|c| format!("{:8.2}", c.points[k].speedup))
                .collect();
            out.push_str(&format!("{p:5} {}\n", row.join(" ")));
        }
        out
    }
}

/// Build a figure spec by id ("fig4", "fig6", "fig6b", "fig8", "fig10",
/// "fig10b", "fig11", "fig12", "fig13"), at `scale` of the paper size.
pub fn figure(id: &str, scale: f64) -> Option<FigureSpec> {
    let s = |n: i64| ((n as f64 * scale).round() as i64).max(16);
    let (benchmark, size_label, program): (&'static str, String, Program) = match id {
        "fig4" => ("vpenta", format!("{0}x{0}", s(128)), programs::vpenta(s(128), 3)),
        "fig6" => ("lu", format!("{0}x{0}", s(256)), programs::lu(s(256))),
        "fig6b" => ("lu", format!("{0}x{0}", s(1024)), programs::lu(s(1024))),
        "fig8" => ("stencil", format!("{0}x{0}", s(512)), programs::stencil(s(512), 5)),
        "fig10" => ("adi", format!("{0}x{0}", s(256)), programs::adi(s(256), 5)),
        "fig10b" => ("adi", format!("{0}x{0}", s(1024)), programs::adi(s(1024), 5)),
        "fig11" => ("erlebacher", format!("{0}^3", s(64)), programs::erlebacher(s(64))),
        "fig12" => ("swm256", format!("{0}x{0}", s(257)), programs::swm256(s(257), 5)),
        "fig13" => ("tomcatv", format!("{0}x{0}", s(257)), programs::tomcatv(s(257), 5)),
        _ => return None,
    };
    Some(FigureSpec { id: Box::leak(id.to_string().into_boxed_str()), benchmark, size_label, program })
}

/// Every figure id, in paper order.
pub const ALL_FIGURES: &[&str] =
    &["fig4", "fig6", "fig6b", "fig8", "fig10", "fig10b", "fig11", "fig12", "fig13"];

/// Run a figure: the three strategies across `procs_list`.
pub fn run_figure(spec: &FigureSpec, procs_list: &[usize]) -> DctResult<FigureResult> {
    let params = spec.program.default_params();
    let seq = sequential_cycles(&spec.program, &params)?;
    let curves = Strategy::ALL
        .iter()
        .map(|&strategy| {
            Ok(StrategyCurve {
                strategy,
                points: speedup_curve(&spec.program, strategy, procs_list, &params, seq)?,
            })
        })
        .collect::<DctResult<Vec<_>>>()?;
    Ok(FigureResult {
        spec_id: spec.id.to_string(),
        benchmark: spec.benchmark.to_string(),
        size_label: spec.size_label.clone(),
        seq_cycles: seq,
        curves,
    })
}

/// Parallel variant of [`run_figure`]: simulation points are independent,
/// so they are swept with a scoped worker pool whose size respects the
/// thread budget (each point additionally runs the sharded engine with
/// `budget.intra` threads). A panicking worker is caught and surfaced as
/// an error for its point, not a process abort.
pub fn run_figure_parallel(
    spec: &FigureSpec,
    procs_list: &[usize],
    budget: ThreadBudget,
) -> DctResult<FigureResult> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    eprintln!("[{budget}]");
    let workers = budget.workers;
    let params = spec.program.default_params();
    let seq = sequential_cycles(&spec.program, &params)?;

    // Task list: (strategy index, procs index).
    let tasks: Vec<(usize, usize)> = (0..Strategy::ALL.len())
        .flat_map(|s| (0..procs_list.len()).map(move |k| (s, k)))
        .collect();
    let next = AtomicUsize::new(0);
    let results: Mutex<Vec<Vec<Option<Result<SpeedupPoint, String>>>>> =
        Mutex::new(vec![vec![None; procs_list.len()]; Strategy::ALL.len()]);

    std::thread::scope(|scope| {
        for _ in 0..workers.max(1) {
            scope.spawn(|| {
                // Each worker compiles lazily per strategy (compilation is
                // cheap relative to simulation).
                let mut compiled: Vec<Option<Result<(Compiler, dct_core::Compiled), String>>> =
                    (0..Strategy::ALL.len()).map(|_| None).collect();
                loop {
                    let t = next.fetch_add(1, Ordering::Relaxed);
                    if t >= tasks.len() {
                        break;
                    }
                    let (si, ki) = tasks[t];
                    let strategy = Strategy::ALL[si];
                    if compiled[si].is_none() {
                        let c = Compiler::new(strategy);
                        let cc = catch_unwind(AssertUnwindSafe(|| c.compile(&spec.program)));
                        compiled[si] = Some(match cc {
                            Ok(Ok(cc)) => Ok((c, cc)),
                            Ok(Err(e)) => Err(e.to_string()),
                            Err(p) => Err(panic_message(p.as_ref())),
                        });
                    }
                    let procs = procs_list[ki];
                    let point = match compiled[si].as_ref().unwrap() {
                        Err(e) => Err(e.clone()),
                        Ok((c, cc)) => {
                            match catch_unwind(AssertUnwindSafe(|| {
                                c.simulate_threads(cc, procs, &params, budget.intra)
                            })) {
                                Ok(Ok(r)) => Ok(SpeedupPoint {
                                    procs,
                                    cycles: r.cycles,
                                    speedup: seq as f64 / r.cycles as f64,
                                }),
                                Ok(Err(e)) => Err(e.to_string()),
                                Err(p) => Err(panic_message(p.as_ref())),
                            }
                        }
                    };
                    results.lock().unwrap()[si][ki] = Some(point);
                }
            });
        }
    });

    let results = results.into_inner().unwrap();
    let mut curves = Vec::with_capacity(Strategy::ALL.len());
    for (si, &strategy) in Strategy::ALL.iter().enumerate() {
        let mut points = Vec::with_capacity(procs_list.len());
        for (ki, slot) in results[si].iter().enumerate() {
            match slot {
                Some(Ok(p)) => points.push(*p),
                Some(Err(e)) => {
                    return Err(DctError::new(
                        Phase::Sim,
                        format!(
                            "{} under {} at {} procs: {e}",
                            spec.id,
                            strategy.label(),
                            procs_list[ki]
                        ),
                    ))
                }
                None => {
                    return Err(DctError::internal(
                        Phase::Sim,
                        format!("{}: sweep point never ran", spec.id),
                    ))
                }
            }
        }
        curves.push(StrategyCurve { strategy, points });
    }
    Ok(FigureResult {
        spec_id: spec.id.to_string(),
        benchmark: spec.benchmark.to_string(),
        size_label: spec.size_label.clone(),
        seq_cycles: seq,
        curves,
    })
}

/// One row of Table 1. Speedups are `None` when that cell's compilation
/// or simulation failed; `notes` carries the reasons.
#[derive(Clone, Debug)]
pub struct Table1Row {
    pub program: String,
    pub base_speedup: Option<f64>,
    pub full_speedup: Option<f64>,
    pub comp_decomp_critical: bool,
    pub data_transform_critical: bool,
    pub decompositions: Vec<String>,
    pub notes: Vec<String>,
}

/// Outcome of one simulation cell: cycles, or why it failed.
type CellResult = Result<u64, String>;

/// Table 1 cell labels, in task order: sequential reference then the
/// three strategies.
const CELL_LABELS: [&str; 4] = ["sequential", "base", "comp-decomp", "full"];

/// Run one Table 1 cell, catching panics so a bad benchmark cannot
/// poison the sweep. `threads` drives the sharded engine inside the
/// simulation (bit-identical at any value).
fn run_cell(prog: &Program, params: &[i64], procs: usize, k: usize, threads: usize) -> CellResult {
    let body = || -> Result<u64, String> {
        match k {
            0 => sequential_cycles(prog, params).map_err(|e| e.to_string()),
            _ => {
                let c = Compiler::new(Strategy::ALL[k - 1]);
                let compiled = c.compile(prog).map_err(|e| e.to_string())?;
                c.simulate_threads(&compiled, procs, params, threads)
                    .map(|r| r.cycles)
                    .map_err(|e| e.to_string())
            }
        }
    };
    match catch_unwind(AssertUnwindSafe(body)) {
        Ok(r) => r,
        Err(p) => Err(format!("worker panicked: {}", panic_message(p.as_ref()))),
    }
}

/// Assemble one Table 1 row from its four cells.
fn assemble_row(name: &str, prog: &Program, cy: &[CellResult; 4]) -> Table1Row {
    let mut notes: Vec<String> = Vec::new();
    for (k, c) in cy.iter().enumerate() {
        if let Err(e) = c {
            notes.push(format!("{}: {e}", CELL_LABELS[k]));
        }
    }
    let speed = |k: usize| -> Option<f64> {
        match (&cy[0], &cy[k]) {
            (Ok(seq), Ok(c)) => Some(*seq as f64 / *c as f64),
            _ => None,
        }
    };
    let (base, comp, full) = (speed(1), speed(2), speed(3));
    // A technique is "critical" when removing it costs >= 15%. Criticality
    // is only decidable when all three strategies produced numbers.
    let (comp_critical, data_critical) = match (base, comp, full) {
        (Some(b), Some(c), Some(f)) => {
            (c > b * 1.15 || f > b * 1.15 && c * 1.15 < f, f > c * 1.15)
        }
        _ => (false, false),
    };
    let decos: Vec<String> = match Compiler::new(Strategy::Full).compile(prog) {
        Ok(compiled) => {
            if !compiled.degradations.is_empty() {
                notes.push(format!("full: degraded to {}", compiled.rung.label()));
            }
            compiled
                .decomposition
                .hpf_all(&compiled.program)
                .into_iter()
                .filter(|d| !d.contains("(*") || d.contains("BLOCK") || d.contains("CYCLIC"))
                .collect()
        }
        Err(e) => {
            notes.push(format!("decompositions unavailable: {e}"));
            Vec::new()
        }
    };
    Table1Row {
        program: name.to_string(),
        base_speedup: base,
        full_speedup: full,
        comp_decomp_critical: comp_critical,
        data_transform_critical: data_critical,
        decompositions: decos,
        notes,
    }
}

/// Regenerate Table 1 at `procs` processors and `scale` of the paper
/// sizes, one cell at a time (the whole host budget goes intra-cell).
pub fn table1(procs: usize, scale: f64) -> Vec<Table1Row> {
    table1_serial(procs, scale, ThreadBudget::single_cell(None).intra)
}

/// [`table1`] with an explicit intra-cell thread count.
fn table1_serial(procs: usize, scale: f64, threads: usize) -> Vec<Table1Row> {
    let suite = programs::suite(scale);
    suite
        .iter()
        .map(|b| {
            let params = b.program.default_params();
            let cy: [CellResult; 4] =
                std::array::from_fn(|k| run_cell(&b.program, &params, procs, k, threads));
            assemble_row(b.name, &b.program, &cy)
        })
        .collect()
}

/// Parallel variant of [`table1`]: the 4 simulations per benchmark
/// (sequential reference + three strategies) are independent, so all
/// `suite.len() * 4` of them are swept with a scoped worker pool sized
/// by the thread budget (each cell also runs the sharded engine with
/// `budget.intra` threads). Rows are assembled in suite order afterwards
/// — the output is identical to the sequential version. A failing or
/// panicking cell becomes a failed cell in its row, never a poisoned
/// sweep.
pub fn table1_parallel(procs: usize, scale: f64, budget: ThreadBudget) -> Vec<Table1Row> {
    table1_parallel_with_hook(procs, scale, budget, None)
}

/// Testing back door for [`table1_parallel`]: `hook(bench, k)` runs inside
/// the worker before cell `(bench, k)` and may panic to simulate a crashed
/// cell.
#[doc(hidden)]
pub fn table1_parallel_with_hook(
    procs: usize,
    scale: f64,
    budget: ThreadBudget,
    hook: Option<&(dyn Fn(&str, usize) + Sync)>,
) -> Vec<Table1Row> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    eprintln!("[{budget}]");
    let workers = budget.workers;
    if workers <= 1 && hook.is_none() {
        // No across-cell parallelism: the pool is pure overhead.
        return table1_serial(procs, scale, budget.intra);
    }
    let suite = programs::suite(scale);
    // Task (b, k): benchmark b, run k = 0 sequential reference, else
    // Strategy::ALL[k - 1] at `procs`.
    let tasks: Vec<(usize, usize)> =
        (0..suite.len()).flat_map(|b| (0..4).map(move |k| (b, k))).collect();
    let next = AtomicUsize::new(0);
    let cells: Mutex<Vec<[CellResult; 4]>> =
        Mutex::new(vec![std::array::from_fn(|_| Err("never ran".to_string())); suite.len()]);

    std::thread::scope(|scope| {
        for _ in 0..workers.max(1) {
            scope.spawn(|| loop {
                let t = next.fetch_add(1, Ordering::Relaxed);
                if t >= tasks.len() {
                    break;
                }
                let (b, k) = tasks[t];
                let bench = &suite[b];
                let params = bench.program.default_params();
                let c = match catch_unwind(AssertUnwindSafe(|| {
                    if let Some(h) = hook {
                        h(bench.name, k);
                    }
                    run_cell(&bench.program, &params, procs, k, budget.intra)
                })) {
                    Ok(r) => r,
                    Err(p) => Err(format!("worker panicked: {}", panic_message(p.as_ref()))),
                };
                cells.lock().unwrap()[b][k] = c;
            });
        }
    });

    let cells = cells.into_inner().unwrap();
    suite.iter().zip(&cells).map(|(b, cy)| assemble_row(b.name, &b.program, cy)).collect()
}

/// One benchmark × strategy cell of the race-check sweep: the detector's
/// report, or why the cell could not run.
#[derive(Clone, Debug)]
pub struct RaceCheckCell {
    pub program: String,
    pub strategy: Strategy,
    pub outcome: Result<dct_ir::RaceReport, String>,
}

impl RaceCheckCell {
    /// True when the cell ran and the detector certified it race-free.
    pub fn is_clean(&self) -> bool {
        matches!(&self.outcome, Ok(rep) if rep.is_race_free())
    }
}

/// Run one race-check cell: compile under `strategy`, simulate at `procs`
/// with the happens-before detector enabled, and return its report.
fn run_race_cell(
    prog: &Program,
    params: &[i64],
    procs: usize,
    strategy: Strategy,
    threads: usize,
) -> Result<dct_ir::RaceReport, String> {
    let body = || -> Result<dct_ir::RaceReport, String> {
        let c = Compiler::new(strategy);
        let compiled = c.compile(prog).map_err(|e| e.to_string())?;
        let mut opts = dct_core::rung_sim_options(compiled.rung, procs, params.to_vec());
        opts.race_detect = true;
        opts.threads = threads.max(1);
        let r = dct_spmd::simulate(&compiled.program, &compiled.decomposition, &opts)
            .map_err(|e| e.to_string())?;
        r.race.ok_or_else(|| "detector produced no report".to_string())
    };
    match catch_unwind(AssertUnwindSafe(body)) {
        Ok(r) => r,
        Err(p) => Err(format!("worker panicked: {}", panic_message(p.as_ref()))),
    }
}

/// Certify every Table 1 benchmark under every strategy at `procs`
/// processors with the happens-before race detector on. Cells are
/// independent and swept with a scoped worker pool, like [`table1_parallel`].
/// This is the schedule-soundness check behind `repro --race-check`: the
/// detector is the only oracle that can see missing synchronization, since
/// the deterministic simulator never produces "racy but lucky" values.
pub fn race_check(procs: usize, scale: f64, budget: ThreadBudget) -> Vec<RaceCheckCell> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    eprintln!("[{budget}]");
    let workers = budget.workers;
    let suite = programs::suite(scale);
    let tasks: Vec<(usize, usize)> =
        (0..suite.len()).flat_map(|b| (0..Strategy::ALL.len()).map(move |s| (b, s))).collect();
    let next = AtomicUsize::new(0);
    let cells: Mutex<Vec<Option<RaceCheckCell>>> = Mutex::new(vec![None; tasks.len()]);

    std::thread::scope(|scope| {
        for _ in 0..workers.max(1) {
            scope.spawn(|| loop {
                let t = next.fetch_add(1, Ordering::Relaxed);
                if t >= tasks.len() {
                    break;
                }
                let (b, s) = tasks[t];
                let bench = &suite[b];
                let strategy = Strategy::ALL[s];
                let params = bench.program.default_params();
                let outcome =
                    run_race_cell(&bench.program, &params, procs, strategy, budget.intra);
                cells.lock().unwrap()[t] =
                    Some(RaceCheckCell { program: bench.name.to_string(), strategy, outcome });
            });
        }
    });

    cells
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|c| c.expect("race-check cell never ran"))
        .collect()
}

/// Render the race-check sweep; one line per benchmark × strategy.
pub fn render_race_check(cells: &[RaceCheckCell], procs: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Race check: every benchmark x strategy at {procs} processors (happens-before detector)\n"
    ));
    for c in cells {
        match &c.outcome {
            Ok(rep) if rep.is_race_free() => out.push_str(&format!(
                "  {:<12} {:<28} clean ({} accesses checked, {} sync edges)\n",
                c.program,
                c.strategy.label(),
                rep.checked,
                rep.sync_edges
            )),
            Ok(rep) => out.push_str(&format!(
                "  {:<12} {:<28} RACY: {rep}",
                c.program,
                c.strategy.label()
            )),
            Err(e) => out.push_str(&format!(
                "  {:<12} {:<28} failed: {e}\n",
                c.program,
                c.strategy.label()
            )),
        }
    }
    let bad = cells.iter().filter(|c| !c.is_clean()).count();
    if bad == 0 {
        out.push_str("  all schedules certified race-free\n");
    } else {
        out.push_str(&format!("  {bad} cell(s) NOT certified\n"));
    }
    out
}

/// Render Table 1. Failed cells print `fail` and the row's notes follow
/// indented beneath it.
pub fn render_table1(rows: &[Table1Row], procs: usize) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Table 1: summary at {procs} processors (speedups vs best sequential)\n"
    ));
    out.push_str("program      base   fully-opt  comp-critical  data-critical  decompositions\n");
    let num = |v: Option<f64>, w: usize| match v {
        Some(x) => format!("{x:>w$.1}"),
        None => format!("{:>w$}", "fail"),
    };
    for r in rows {
        out.push_str(&format!(
            "{:<12} {}  {}   {:^13} {:^14}  {}\n",
            r.program,
            num(r.base_speedup, 5),
            num(r.full_speedup, 8),
            if r.comp_decomp_critical { "yes" } else { "-" },
            if r.data_transform_critical { "yes" } else { "-" },
            r.decompositions.join("  ")
        ));
        for n in &r.notes {
            out.push_str(&format!("             ! {n}\n"));
        }
    }
    out
}
