//! Content-addressed result store: repeated cells are free.
//!
//! Every simulation cell is keyed by a *stable* 128-bit fingerprint of
//! everything that determines its result: the canonicalized IR of the
//! compiled program (dct-ir [`dct_ir::fingerprint`]), the realized
//! strategy rung, the full decomposition (grid, foldings, per-nest and
//! per-array placement), the resolved machine configuration field by
//! field, and the result-relevant simulation options. Host-side knobs
//! that are proven bit-identical (`threads`, `fast_path`) are *excluded*
//! by construction — they never reach the key builder.
//!
//! Entries live under `<root>/<2-hex-shard>/<key>.json` and reuse the v2
//! checkpoint envelope from [`crate::sweep`] (schema + crc64 + flat cell
//! body, written with [`atomic_write_sync`]). A lookup that fails
//! verification quarantines the file to `<root>/corrupt/` and reports a
//! miss: a flipped bit costs one recompute, never a wrong table. An
//! optional byte budget is enforced by an LRU sweep over entry mtimes.
//!
//! The same store also holds rendered *artifacts* (explain reports) in a
//! sibling envelope `{"schema":2,"crc64":...,"artifact":"..."}` so the
//! serve API can answer explain requests from cache.

use crate::chaos::{FaultInjector, FaultSite};
use crate::harness::atomic_write_sync;
use crate::sweep::{
    checkpoint_from_json, checkpoint_to_json, esc, fnv64, json_str, Cell, CKPT_SCHEMA,
};
use dct_core::{Compiler, Strategy};
use dct_decomp::{CompRow, Decomposition, Folding};
use dct_ir::{FpHasher, Program};
use dct_machine::MachineConfig;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::SystemTime;

/// Version of the cache key derivation. Mixed into every key; bump it
/// whenever the key walk (not the IR walk — that has its own
/// [`dct_ir::FP_SCHEMA`]) changes shape, so stale entries miss cleanly.
pub const CACHE_KEY_SCHEMA: u32 = 1;

// ----------------------------------------------------------------- key --

/// Everything that may influence a cell's simulated result. Build one of
/// these and call [`cell_cache_key`]; there is deliberately no way to
/// feed `threads` or `fast_path` in.
#[derive(Clone, Debug)]
pub struct KeyInputs<'a> {
    /// The *source* program of the cell (pre-compilation).
    pub prog: &'a Program,
    /// Sweep cell kind: `seq` / `base` / `comp` / `full`.
    pub kind: &'a str,
    /// Processor count of the cell (`seq` forces 1, like the sweep).
    pub procs: usize,
    /// Scale in milli-units ([`crate::sweep::scale_key`]).
    pub scale_milli: i64,
    /// Race detector on (its report joins the cell fingerprint).
    pub race_check: bool,
    /// Memory profiler on (its rows join the cell fingerprint).
    pub profile: bool,
    /// Simulated-cycle budget (a budget changes timeout outcomes).
    pub max_cycles: Option<u64>,
    /// Wall budget, seconds (idem).
    pub max_wall_secs: Option<f64>,
    /// Machine override; `None` = the DASH preset for `procs` (resolved
    /// and hashed field by field either way).
    pub machine: Option<&'a MachineConfig>,
}

/// A fully derived cache key: human-readable prefix + content hash.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    pub bench: String,
    pub kind: String,
    pub procs: usize,
    pub hash: u128,
}

impl CacheKey {
    /// Two-hex-digit shard directory (top byte of the hash).
    pub fn shard(&self) -> String {
        format!("{:02x}", (self.hash >> 120) as u8)
    }

    /// Entry file name, unique per key.
    pub fn filename(&self) -> String {
        format!("{}-{}-p{}-{:032x}.json", self.bench, self.kind, self.procs, self.hash)
    }
}

impl std::fmt::Display for CacheKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}/{:032x}", self.shard(), self.filename(), self.hash)
    }
}

/// The sweep's kind → (strategy, procs) mapping, shared with
/// [`crate::sweep`] so keys and computations can never disagree.
pub fn kind_strategy(kind: &str, procs: usize) -> (Strategy, usize) {
    match kind {
        "seq" => (Strategy::Base, 1),
        "base" => (Strategy::Base, procs),
        "comp" => (Strategy::CompDecomp, procs),
        _ => (Strategy::Full, procs),
    }
}

fn hash_folding(h: &mut FpHasher, f: &Folding) {
    match f {
        Folding::Block => h.write_tag(0x40),
        Folding::Cyclic => h.write_tag(0x41),
        Folding::BlockCyclic { block } => {
            h.write_tag(0x42);
            h.write_i64(*block);
        }
    }
}

fn hash_decomposition(h: &mut FpHasher, d: &Decomposition) {
    h.write_tag(0x43);
    h.write_u64(d.grid_rank as u64);
    h.write_len(d.foldings.len());
    for f in &d.foldings {
        hash_folding(h, f);
    }
    h.write_len(d.comp.len());
    for c in &d.comp {
        h.write_tag(0x44);
        h.write_len(c.rows.len());
        for r in &c.rows {
            match r {
                CompRow::Level(l) => {
                    h.write_tag(0x45);
                    h.write_u64(*l as u64);
                }
                CompRow::Localized(a) => {
                    h.write_tag(0x46);
                    h.add_aff(a);
                }
                CompRow::Unconstrained => h.write_tag(0x47),
            }
        }
        h.write_len(c.parallel_levels.len());
        for &b in &c.parallel_levels {
            h.write_bool(b);
        }
        match c.pipeline_level {
            None => h.write_tag(0x48),
            Some(l) => {
                h.write_tag(0x49);
                h.write_u64(l as u64);
            }
        }
        h.write_u64(c.misaligned_refs as u64);
    }
    h.write_len(d.data.len());
    for a in &d.data {
        h.write_tag(0x4a);
        h.write_len(a.dists.len());
        for dist in &a.dists {
            h.write_u64(dist.dim as u64);
            h.write_u64(dist.proc_dim as u64);
        }
        h.write_bool(a.replicated);
    }
    // `notes` is prose for the optimization report; deliberately excluded.
}

fn hash_machine(h: &mut FpHasher, m: &MachineConfig) {
    // Every field, by name, in declaration order. A new MachineConfig
    // field must be added here (the zoo test below counts fields).
    h.write_tag(0x4b);
    h.write_u64(m.nprocs as u64);
    h.write_u64(m.procs_per_cluster as u64);
    h.write_u64(m.l1_bytes as u64);
    h.write_u64(m.l1_assoc as u64);
    h.write_u64(m.l2_bytes as u64);
    h.write_u64(m.l2_assoc as u64);
    h.write_u64(m.line_bytes as u64);
    h.write_u64(m.page_bytes as u64);
    h.write_u64(m.lat_l1);
    h.write_u64(m.lat_l2);
    h.write_u64(m.lat_local);
    h.write_u64(m.lat_remote);
    h.write_u64(m.lat_remote_dirty);
    h.write_u64(m.lat_invalidate);
    h.write_u64(m.barrier_base);
    h.write_u64(m.barrier_per_proc);
    h.write_u64(m.lock_cost);
    h.write_bool(m.classify_misses);
}

/// Derive the content-addressed key of one cell. Compiles the program
/// (cheap next to simulating it) so the key covers what the simulator
/// will actually run: the transformed IR, the realized rung, and the
/// concrete decomposition — a compiler change that alters any of them
/// changes the key instead of falsely hitting stale entries.
pub fn cell_cache_key(bench: &str, inp: &KeyInputs) -> Result<CacheKey, String> {
    let (strategy, procs) = kind_strategy(inp.kind, inp.procs);
    let compiled = Compiler::new(strategy).compile(inp.prog).map_err(|e| e.to_string())?;
    let mut h = FpHasher::new();
    h.write_str("dct-cache-key");
    h.write_u32(CACHE_KEY_SCHEMA);
    h.add_program(&compiled.program);
    h.write_str(strategy.label());
    h.write_str(compiled.rung.label());
    hash_decomposition(&mut h, &compiled.decomposition);
    let dash;
    let machine = match inp.machine {
        Some(m) => m,
        None => {
            dash = MachineConfig::dash(procs);
            &dash
        }
    };
    hash_machine(&mut h, machine);
    h.write_u64(procs as u64);
    h.write_i64(inp.scale_milli);
    h.write_bool(inp.race_check);
    h.write_bool(inp.profile);
    match inp.max_cycles {
        None => h.write_tag(0x4c),
        Some(v) => {
            h.write_tag(0x4d);
            h.write_u64(v);
        }
    }
    match inp.max_wall_secs {
        None => h.write_tag(0x4e),
        Some(v) => {
            h.write_tag(0x4f);
            h.write_f64(v);
        }
    }
    Ok(CacheKey {
        bench: bench.to_string(),
        kind: inp.kind.to_string(),
        procs,
        hash: h.finish128(),
    })
}

/// Key of a rendered artifact (explain report): the cell-key machinery
/// over every per-strategy compile, plus an artifact tag, so a report is
/// reusable exactly when all its inputs are.
pub fn artifact_cache_key(
    tag: &str,
    bench: &str,
    prog: &Program,
    procs: usize,
    scale_milli: i64,
) -> Result<CacheKey, String> {
    let mut h = FpHasher::new();
    h.write_str("dct-cache-artifact");
    h.write_u32(CACHE_KEY_SCHEMA);
    h.write_str(tag);
    for kind in ["seq", "base", "comp", "full"] {
        let (strategy, procs) = kind_strategy(kind, procs);
        let compiled = Compiler::new(strategy).compile(prog).map_err(|e| e.to_string())?;
        h.add_program(&compiled.program);
        h.write_str(compiled.rung.label());
        hash_decomposition(&mut h, &compiled.decomposition);
        h.write_u64(procs as u64);
    }
    h.write_i64(scale_milli);
    Ok(CacheKey {
        bench: bench.to_string(),
        kind: tag.to_string(),
        procs,
        hash: h.finish128(),
    })
}

// --------------------------------------------------------------- store --

/// Monotonic counters of one store's lifetime (shared across threads).
#[derive(Debug, Default)]
pub struct CacheStats {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub inserts: AtomicU64,
    pub evictions: AtomicU64,
    pub corrupt: AtomicU64,
}

impl CacheStats {
    pub fn snapshot(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.inserts.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
            self.corrupt.load(Ordering::Relaxed),
        )
    }
}

/// The content-addressed result store.
#[derive(Debug)]
pub struct ResultStore {
    root: PathBuf,
    /// LRU byte budget; `None` = unbounded.
    max_bytes: Option<u64>,
    stats: CacheStats,
}

impl ResultStore {
    /// Open (creating) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>, max_bytes: Option<u64>) -> io::Result<ResultStore> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        Ok(ResultStore { root, max_bytes, stats: CacheStats::default() })
    }

    pub fn root(&self) -> &Path {
        &self.root
    }

    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// `hits H misses M inserts I evictions E corrupt C` — one line for
    /// logs and the `/api/stats` endpoint.
    pub fn stats_line(&self) -> String {
        let (h, m, i, e, c) = self.stats.snapshot();
        format!("hits {h} misses {m} inserts {i} evictions {e} corrupt {c}")
    }

    fn path_of(&self, key: &CacheKey) -> PathBuf {
        self.root.join(key.shard()).join(key.filename())
    }

    /// Quarantine a bad entry to `<root>/corrupt/` (mirrors the sweep's
    /// checkpoint policy: corrupt data is preserved for autopsy, never
    /// silently deleted or trusted).
    fn quarantine(&self, path: &Path, reason: &str) {
        let cdir = self.root.join("corrupt");
        let _ = std::fs::create_dir_all(&cdir);
        let name = path.file_name().map(|n| n.to_string_lossy().to_string()).unwrap_or_default();
        let moved = std::fs::rename(path, cdir.join(&name)).is_ok();
        eprintln!(
            "[cache: corrupt entry {name}: {reason}{}]",
            if moved { " -> corrupt/" } else { " (could not be moved)" }
        );
        self.stats.corrupt.fetch_add(1, Ordering::Relaxed);
    }

    /// Look a cell up. Verifies the envelope checksum and the identity
    /// fields; anything untrustworthy is quarantined and reported as a
    /// miss.
    pub fn lookup_cell(&self, key: &CacheKey) -> Option<Cell> {
        let path = self.path_of(key);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match checkpoint_from_json(&text) {
            Ok(cell) => {
                if cell.bench != key.bench || cell.kind != key.kind || cell.procs != key.procs {
                    self.quarantine(&path, "identity fields disagree with the key");
                    self.stats.misses.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(cell)
            }
            Err(reason) => {
                self.quarantine(&path, &reason);
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Insert a cell (atomic + durable), with the `cache-write-io` fault
    /// hook. Callers treat an error like a checkpoint-write failure: the
    /// attempt is retried by the ladder.
    pub fn insert_cell(
        &self,
        key: &CacheKey,
        cell: &Cell,
        inj: Option<&FaultInjector>,
    ) -> io::Result<()> {
        self.insert_raw(key, &checkpoint_to_json(cell), inj)
    }

    /// Artifact envelope: same schema/crc64 discipline as cell entries.
    pub fn insert_artifact(
        &self,
        key: &CacheKey,
        text: &str,
        inj: Option<&FaultInjector>,
    ) -> io::Result<()> {
        let body = format!("\"{}\"", esc(text));
        let json = format!(
            "{{\"schema\":{CKPT_SCHEMA},\"crc64\":\"{:016x}\",\"artifact\":{body}}}",
            fnv64(body.as_bytes())
        );
        self.insert_raw(key, &json, inj)
    }

    /// Look an artifact up, verifying its checksum; corrupt entries are
    /// quarantined and miss.
    pub fn lookup_artifact(&self, key: &CacheKey) -> Option<String> {
        let path = self.path_of(key);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(_) => {
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        match verify_artifact(&text) {
            Ok(a) => {
                self.stats.hits.fetch_add(1, Ordering::Relaxed);
                Some(a)
            }
            Err(reason) => {
                self.quarantine(&path, &reason);
                self.stats.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn insert_raw(&self, key: &CacheKey, json: &str, inj: Option<&FaultInjector>) -> io::Result<()> {
        if inj.is_some_and(|i| i.fire(FaultSite::CacheWriteIo, &key.filename())) {
            return Err(io::Error::other(format!(
                "injected: cache write IO error ({})",
                key.filename()
            )));
        }
        let path = self.path_of(key);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)?;
        }
        atomic_write_sync(&path, json.as_bytes())?;
        self.stats.inserts.fetch_add(1, Ordering::Relaxed);
        if let Some(budget) = self.max_bytes {
            self.evict_to(budget);
        }
        Ok(())
    }

    /// LRU sweep: delete oldest-touched entries until the store fits in
    /// `budget` bytes. Returns how many entries were evicted. `corrupt/`
    /// is never touched (it is evidence, not cache).
    pub fn evict_to(&self, budget: u64) -> usize {
        let mut entries: Vec<(PathBuf, SystemTime, u64)> = Vec::new();
        let Ok(shards) = std::fs::read_dir(&self.root) else { return 0 };
        for shard in shards.flatten() {
            let sp = shard.path();
            if !sp.is_dir() || shard.file_name().to_string_lossy() == "corrupt" {
                continue;
            }
            let Ok(files) = std::fs::read_dir(&sp) else { continue };
            for f in files.flatten() {
                let p = f.path();
                if !p.is_file() {
                    continue;
                }
                if let Ok(md) = f.metadata() {
                    let mtime = md.modified().unwrap_or(SystemTime::UNIX_EPOCH);
                    entries.push((p, mtime, md.len()));
                }
            }
        }
        let mut total: u64 = entries.iter().map(|e| e.2).sum();
        if total <= budget {
            return 0;
        }
        // Oldest first; mtime ties broken by path for determinism.
        entries.sort_by(|a, b| a.1.cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
        let mut evicted = 0;
        for (p, _, len) in entries {
            if total <= budget {
                break;
            }
            if std::fs::remove_file(&p).is_ok() {
                total = total.saturating_sub(len);
                evicted += 1;
                self.stats.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        evicted
    }
}

/// Parse + verify an artifact envelope. `Err` carries why the file is
/// untrustworthy.
fn verify_artifact(s: &str) -> Result<String, String> {
    let schema = crate::sweep::json_num(s, "schema").ok_or("schema field unreadable")?;
    if schema != CKPT_SCHEMA {
        return Err(format!("unsupported schema {schema} (this build reads {CKPT_SCHEMA})"));
    }
    let crc = u64::from_str_radix(&json_str(s, "crc64").ok_or("crc64 field unreadable")?, 16)
        .map_err(|_| "crc64 field unreadable".to_string())?;
    let pat = "\"artifact\":";
    let start = s.find(pat).ok_or("artifact body missing")? + pat.len();
    let trimmed = s.trim_end();
    if trimmed.len() <= start + 1 {
        return Err("truncated artifact body".to_string());
    }
    let body = &trimmed[start..trimmed.len() - 1];
    let actual = fnv64(body.as_bytes());
    if actual != crc {
        return Err(format!(
            "content checksum mismatch: stored {crc:016x}, computed {actual:016x} (corrupt entry)"
        ));
    }
    json_str(s, "artifact").ok_or_else(|| "unparseable artifact body".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs;
    use crate::sweep::CellOutcome;

    fn stencil_key(kind: &str) -> CacheKey {
        let suite = programs::suite(0.1);
        let b = suite.iter().find(|b| b.name == "stencil").expect("stencil in suite");
        let inp = KeyInputs {
            prog: &b.program,
            kind,
            procs: 8,
            scale_milli: 100,
            race_check: false,
            profile: false,
            max_cycles: None,
            max_wall_secs: None,
            machine: None,
        };
        cell_cache_key("stencil", &inp).expect("key derivation")
    }

    /// Golden cache keys: any change to the key walk — IR fingerprint,
    /// decomposition hashing, machine fields, option list — lands here
    /// first, where it can be repinned deliberately (bump
    /// CACHE_KEY_SCHEMA) instead of silently splitting or colliding the
    /// cache.
    #[test]
    fn golden_cache_keys_pinned() {
        let full = stencil_key("full");
        assert_eq!(full.procs, 8);
        assert_eq!(
            full.filename(),
            "stencil-full-p8-e99659a8094124ce1df25f635ef10669.json",
            "cache key walk changed; bump CACHE_KEY_SCHEMA and repin deliberately"
        );
        let seq = stencil_key("seq");
        assert_eq!(seq.procs, 1, "seq cells pin procs to 1");
        assert_ne!(full.hash, seq.hash);
        assert_eq!(full.shard().len(), 2);
    }

    /// The key must see result-relevant options and ignore nothing else.
    #[test]
    fn key_sensitivity() {
        let suite = programs::suite(0.1);
        let b = suite.iter().find(|b| b.name == "stencil").expect("stencil");
        let base = KeyInputs {
            prog: &b.program,
            kind: "full",
            procs: 8,
            scale_milli: 100,
            race_check: false,
            profile: false,
            max_cycles: None,
            max_wall_secs: None,
            machine: None,
        };
        let k0 = cell_cache_key("stencil", &base).expect("key");
        let mut i = base.clone();
        i.race_check = true;
        assert_ne!(cell_cache_key("stencil", &i).expect("key").hash, k0.hash, "race_check");
        let mut i = base.clone();
        i.profile = true;
        assert_ne!(cell_cache_key("stencil", &i).expect("key").hash, k0.hash, "profile");
        let mut i = base.clone();
        i.max_cycles = Some(1_000_000);
        assert_ne!(cell_cache_key("stencil", &i).expect("key").hash, k0.hash, "max_cycles");
        let mut i = base.clone();
        i.procs = 16;
        assert_ne!(cell_cache_key("stencil", &i).expect("key").hash, k0.hash, "procs");
        let tiny = MachineConfig::tiny(8);
        let mut i = base.clone();
        i.machine = Some(&tiny);
        assert_ne!(cell_cache_key("stencil", &i).expect("key").hash, k0.hash, "machine");
        // Identical inputs rebuild the identical key (fresh compile).
        assert_eq!(cell_cache_key("stencil", &base).expect("key"), k0);
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dct-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn sample_cell(n: u64) -> Cell {
        let mut c = Cell::new("stencil", "full", 8, 0.1, CellOutcome::Cycles(n));
        c.checksum_bits = Some(0xabcd_ef01_2345_6789);
        c.fingerprint = Some(n ^ 0xff);
        c
    }

    #[test]
    fn store_roundtrip_and_counters() {
        let dir = tmpdir("roundtrip");
        let store = ResultStore::open(&dir, None).expect("open");
        let key = stencil_key("full");
        assert!(store.lookup_cell(&key).is_none(), "empty store misses");
        let cell = sample_cell(42);
        store.insert_cell(&key, &cell, None).expect("insert");
        let back = store.lookup_cell(&key).expect("hit after insert");
        assert_eq!(back, cell);
        let (h, m, i, e, c) = store.stats.snapshot();
        assert_eq!((h, m, i, e, c), (1, 1, 1, 0, 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// The corruption contract: a flipped bit is detected via crc64, the
    /// entry is quarantined to `corrupt/`, the lookup misses (so the cell
    /// is recomputed), and the corrupt counter ticks.
    #[test]
    fn corrupt_entry_detected_quarantined_recomputed() {
        let dir = tmpdir("corrupt");
        let store = ResultStore::open(&dir, None).expect("open");
        let key = stencil_key("full");
        store.insert_cell(&key, &sample_cell(7), None).expect("insert");
        let path = dir.join(key.shard()).join(key.filename());
        let mut bytes = std::fs::read(&path).expect("read entry");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        std::fs::write(&path, &bytes).expect("write corrupted entry");

        assert!(store.lookup_cell(&key).is_none(), "corrupt entry must miss");
        assert!(!path.exists(), "corrupt entry removed from the live tree");
        assert!(
            dir.join("corrupt").join(key.filename()).exists(),
            "corrupt entry preserved under corrupt/"
        );
        assert_eq!(store.stats.corrupt.load(Ordering::Relaxed), 1);

        // Recompute path: a fresh insert over the quarantined name works
        // and the next lookup hits.
        store.insert_cell(&key, &sample_cell(7), None).expect("re-insert");
        assert!(store.lookup_cell(&key).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn lru_eviction_respects_budget() {
        let dir = tmpdir("lru");
        let store = ResultStore::open(&dir, None).expect("open");
        let mut keys = Vec::new();
        for i in 0..6u64 {
            // Distinct hashes: fake keys across shards.
            let key = CacheKey {
                bench: "stencil".into(),
                kind: "full".into(),
                procs: 8,
                hash: (i as u128) << 120 | i as u128,
            };
            store.insert_cell(&key, &sample_cell(i), None).expect("insert");
            keys.push(key);
        }
        let one_entry = std::fs::metadata(dir.join(keys[5].shard()).join(keys[5].filename()))
            .expect("entry metadata")
            .len();
        let evicted = store.evict_to(one_entry * 3);
        assert!(evicted >= 3, "evicted {evicted} of 6 with a 3-entry budget");
        let remaining: usize =
            keys.iter().filter(|k| dir.join(k.shard()).join(k.filename()).exists()).count();
        assert!(remaining <= 3, "{remaining} entries left over budget");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_write_io_fault_surfaces_as_error() {
        use crate::chaos::{Fault, FaultPlan};
        let dir = tmpdir("fault");
        let store = ResultStore::open(&dir, None).expect("open");
        let plan = FaultPlan {
            seed: 0,
            faults: vec![Fault { site: FaultSite::CacheWriteIo, occurrence: 0 }],
        };
        let inj = FaultInjector::new(&plan);
        let key = stencil_key("full");
        let err = store.insert_cell(&key, &sample_cell(1), Some(&inj)).expect_err("fault fires");
        assert!(err.to_string().contains("cache write IO"), "{err}");
        // Consumed once: the retry succeeds.
        store.insert_cell(&key, &sample_cell(1), Some(&inj)).expect("retry clean");
        assert!(store.lookup_cell(&key).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn artifact_roundtrip_and_corruption() {
        let dir = tmpdir("artifact");
        let store = ResultStore::open(&dir, None).expect("open");
        let suite = programs::suite(0.1);
        let b = suite.iter().find(|b| b.name == "stencil").expect("stencil");
        let key = artifact_cache_key("explain", "stencil", &b.program, 8, 100).expect("key");
        let text = "why is this slow\nline two\t\"quoted\"";
        store.insert_artifact(&key, text, None).expect("insert");
        assert_eq!(store.lookup_artifact(&key).as_deref(), Some(text));

        let path = dir.join(key.shard()).join(key.filename());
        let mut bytes = std::fs::read(&path).expect("read");
        let mid = bytes.len() - 4;
        bytes[mid] ^= 0x02;
        std::fs::write(&path, &bytes).expect("corrupt");
        assert!(store.lookup_artifact(&key).is_none(), "corrupt artifact must miss");
        assert!(dir.join("corrupt").join(key.filename()).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
