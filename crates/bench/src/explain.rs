//! `repro explain <bench>`: why is this benchmark slow?
//!
//! Runs one paper benchmark under every strategy with the memory
//! profiler attached and renders ranked per-(nest, array) attribution
//! tables — stall cycles, miss classification, the true/false sharing
//! split, and remote fractions — side by side, so the paper's diagnostic
//! claims ("the data transform eliminates false sharing", "the
//! direct-mapped conflict pathology vanishes under strip-mining") become
//! measured artifacts instead of prose. A JSON artifact is written under
//! `results/` by the CLI.

use crate::programs;
use dct_core::{rung_sim_options, Compiler, Strategy};
use dct_ir::{panic_message, MemProfile, Program};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One profiled run of a benchmark under one strategy.
#[derive(Clone, Debug)]
pub struct ExplainRun {
    /// Wall-clock simulated cycles.
    pub cycles: u64,
    /// The attribution profile.
    pub profile: MemProfile,
    /// The rung actually realized (after any strategy degradation).
    pub rung_label: String,
}

/// One benchmark x strategy cell of the explain sweep.
#[derive(Clone, Debug)]
pub struct StrategyExplain {
    pub strategy: Strategy,
    pub outcome: Result<ExplainRun, String>,
}

/// The explain report for one benchmark.
#[derive(Clone, Debug)]
pub struct ExplainResult {
    pub benchmark: String,
    pub procs: usize,
    pub scale: f64,
    pub strategies: Vec<StrategyExplain>,
}

impl ExplainResult {
    /// The profile of one strategy's run, if it succeeded.
    pub fn profile_of(&self, strategy: Strategy) -> Option<&MemProfile> {
        self.strategies
            .iter()
            .find(|s| s.strategy == strategy)
            .and_then(|s| s.outcome.as_ref().ok())
            .map(|r| &r.profile)
    }

    /// Cycles of one strategy's run, if it succeeded.
    pub fn cycles_of(&self, strategy: Strategy) -> Option<u64> {
        self.strategies
            .iter()
            .find(|s| s.strategy == strategy)
            .and_then(|s| s.outcome.as_ref().ok())
            .map(|r| r.cycles)
    }
}

fn run_explain_cell(
    prog: &Program,
    params: &[i64],
    procs: usize,
    strategy: Strategy,
    threads: usize,
) -> Result<ExplainRun, String> {
    let body = || -> Result<ExplainRun, String> {
        let c = Compiler::new(strategy);
        let compiled = c.compile(prog).map_err(|e| e.to_string())?;
        let mut opts = rung_sim_options(compiled.rung, procs, params.to_vec());
        opts.profile = true;
        opts.threads = threads.max(1);
        let r = dct_spmd::simulate(&compiled.program, &compiled.decomposition, &opts)
            .map_err(|e| e.to_string())?;
        let profile = r.mem_profile.ok_or_else(|| "profiler produced no profile".to_string())?;
        Ok(ExplainRun { cycles: r.cycles, profile, rung_label: compiled.rung.label().to_string() })
    };
    match catch_unwind(AssertUnwindSafe(body)) {
        Ok(r) => r,
        Err(p) => Err(format!("worker panicked: {}", panic_message(p.as_ref()))),
    }
}

/// Profile `benchmark` under every strategy at `procs` processors and
/// `scale` of the paper problem size. Returns `None` for an unknown
/// benchmark name.
pub fn explain(benchmark: &str, scale: f64, procs: usize) -> Option<ExplainResult> {
    explain_strategies(benchmark, scale, procs, &Strategy::ALL)
}

/// [`explain`] with an explicit sharded-engine thread count per cell
/// (bit-identical profiles at any value; `repro --threads` routes here).
pub fn explain_threads(
    benchmark: &str,
    scale: f64,
    procs: usize,
    threads: usize,
) -> Option<ExplainResult> {
    explain_inner(benchmark, scale, procs, &Strategy::ALL, threads)
}

/// [`explain_threads`] behind the content-addressed store: the rendered
/// text and JSON reports are cached as artifacts keyed on the compiled
/// programs (all strategies), so a repeat `repro explain --cache` serves
/// both without re-simulating. Returns `(text, json)`; `None` for an
/// unknown benchmark. Threads are excluded from the key by construction
/// (profiles are bit-identical at any thread count).
pub fn explain_cached(
    benchmark: &str,
    scale: f64,
    procs: usize,
    threads: usize,
    store: &crate::cache::ResultStore,
) -> Option<(String, String)> {
    let bench = programs::suite(scale).into_iter().find(|b| b.name == benchmark)?;
    let scale_milli = crate::sweep::scale_key(scale);
    let key = |tag: &str| {
        crate::cache::artifact_cache_key(tag, benchmark, &bench.program, procs, scale_milli)
            .map_err(|e| eprintln!("[cache: explain key derivation failed: {e}]"))
            .ok()
    };
    let (tkey, jkey) = (key("explain-text"), key("explain-json"));
    if let (Some(tk), Some(jk)) = (&tkey, &jkey) {
        if let (Some(text), Some(json)) = (store.lookup_artifact(tk), store.lookup_artifact(jk)) {
            return Some((text, json));
        }
    }
    let r = explain_threads(benchmark, scale, procs, threads)?;
    let text = render_explain(&r);
    let json = explain_json(&r);
    if let (Some(tk), Some(jk)) = (&tkey, &jkey) {
        let write = store
            .insert_artifact(tk, &text, None)
            .and_then(|()| store.insert_artifact(jk, &json, None));
        if let Err(e) = write {
            // Artifact caching is best-effort: the report itself already
            // exists, so a failed insert only costs the next run a redo.
            eprintln!("[cache: explain insert failed: {e}]");
        }
    }
    Some((text, json))
}

/// [`explain`] restricted to a strategy subset — the diagnosis tests use
/// this to skip strategies irrelevant to (and much slower than) the claim
/// under test.
pub fn explain_strategies(
    benchmark: &str,
    scale: f64,
    procs: usize,
    strategies: &[Strategy],
) -> Option<ExplainResult> {
    explain_inner(benchmark, scale, procs, strategies, dct_spmd::default_threads())
}

fn explain_inner(
    benchmark: &str,
    scale: f64,
    procs: usize,
    strategies: &[Strategy],
    threads: usize,
) -> Option<ExplainResult> {
    let bench = programs::suite(scale).into_iter().find(|b| b.name == benchmark)?;
    let params = bench.program.default_params();
    let strategies = strategies
        .iter()
        .map(|&strategy| StrategyExplain {
            strategy,
            outcome: run_explain_cell(&bench.program, &params, procs, strategy, threads),
        })
        .collect();
    Some(ExplainResult { benchmark: benchmark.to_string(), procs, scale, strategies })
}

/// The dominant miss class of a profile total, as a short diagnosis.
fn dominant_class(p: &MemProfile) -> String {
    let t = p.total();
    let classes = [
        ("cold", t.cold),
        ("capacity", t.capacity),
        ("conflict", t.conflict),
        ("true sharing", t.coh_true),
        ("false sharing", t.coh_false),
    ];
    let (name, n) = classes.iter().max_by_key(|(_, n)| *n).copied().unwrap_or(("cold", 0));
    let total = t.misses();
    if total == 0 {
        "no misses".to_string()
    } else {
        format!("{name} dominates ({:.0}% of {} misses)", 100.0 * n as f64 / total as f64, total)
    }
}

/// Render the explain report: per strategy, cycles, the ranked "why is
/// this slow" table, and a one-line diagnosis.
pub fn render_explain(r: &ExplainResult) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "# explain {} — {} processors, scale {} (why is this slow?)\n",
        r.benchmark, r.procs, r.scale
    ));
    for s in &r.strategies {
        match &s.outcome {
            Ok(run) => {
                out.push_str(&format!(
                    "\n== {} [{}]: {} cycles ==\n",
                    s.strategy.label(),
                    run.rung_label,
                    run.cycles
                ));
                out.push_str(&run.profile.render_ranked(10));
                let t = run.profile.total();
                out.push_str(&format!(
                    "diagnosis: {}; {:.1}% of fills remote; {} invalidations\n",
                    dominant_class(&run.profile),
                    100.0 * t.remote_fraction(),
                    t.invalidations
                ));
            }
            Err(e) => out.push_str(&format!("\n== {}: failed: {e} ==\n", s.strategy.label())),
        }
    }
    // Cross-strategy verdicts: the paper's headline claims, measured.
    if let (Some(cd), Some(full)) =
        (r.profile_of(Strategy::CompDecomp), r.profile_of(Strategy::Full))
    {
        let (c, f) = (cd.total(), full.total());
        if c.coh_false > 0 {
            out.push_str(&format!(
                "\nfalse sharing: {} (comp-decomp) -> {} (+data transform), {:.1}x\n",
                c.coh_false,
                f.coh_false,
                c.coh_false as f64 / f.coh_false.max(1) as f64
            ));
        }
        if c.conflict > 0 || f.conflict > 0 {
            out.push_str(&format!(
                "conflict misses: {} (comp-decomp) -> {} (+data transform)\n",
                c.conflict, f.conflict
            ));
        }
    }
    out
}

/// JSON artifact for `results/explain_<bench>.json` (hand-rolled, like
/// the other artifacts in this repo).
pub fn explain_json(r: &ExplainResult) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"benchmark\": \"{}\",\n", r.benchmark));
    out.push_str(&format!("  \"procs\": {},\n", r.procs));
    out.push_str(&format!("  \"scale\": {},\n", r.scale));
    out.push_str("  \"strategies\": [\n");
    for (k, s) in r.strategies.iter().enumerate() {
        let comma = if k + 1 == r.strategies.len() { "" } else { "," };
        match &s.outcome {
            Ok(run) => {
                out.push_str(&format!(
                    "    {{\"strategy\": \"{}\", \"rung\": \"{}\", \"cycles\": {}, \"profile\": {}}}{comma}\n",
                    s.strategy.label(),
                    run.rung_label,
                    run.cycles,
                    run.profile.to_json("    ")
                ));
            }
            Err(e) => {
                out.push_str(&format!(
                    "    {{\"strategy\": \"{}\", \"error\": \"{}\"}}{comma}\n",
                    s.strategy.label(),
                    e.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', " ")
                ));
            }
        }
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_benchmark_is_none() {
        assert!(explain("nonesuch", 0.1, 4).is_none());
    }

    #[test]
    fn explain_stencil_small() {
        let r = explain("stencil", 0.05, 4).expect("stencil is a suite benchmark");
        assert_eq!(r.strategies.len(), Strategy::ALL.len());
        for s in &r.strategies {
            let run = s.outcome.as_ref().expect("cell must run");
            assert!(run.cycles > 0);
            let t = run.profile.total();
            assert!(t.accesses > 0);
            assert_eq!(t.classified(), t.misses());
        }
        let txt = render_explain(&r);
        assert!(txt.contains("why is this slow"), "{txt}");
        assert!(txt.contains("diagnosis:"), "{txt}");
        let json = explain_json(&r);
        assert_eq!(json.matches('{').count(), json.matches('}').count(), "{json}");
        assert!(json.contains("\"false_sharing\""), "{json}");
    }
}
