//! Crash-safe, resumable, **self-healing** benchmark sweeps.
//!
//! Every simulation cell — one `(benchmark, strategy-kind, procs, scale)`
//! point — is checkpointed to its own JSON file under the results
//! directory the moment it finishes, written atomically (temp file +
//! fsync + rename + directory fsync) so a kill at any instant leaves
//! either the previous state or a complete checkpoint, never a torn file.
//! Checkpoints carry a schema version and an FNV-64 content checksum,
//! verified on `--resume`: a corrupt file is moved to `corrupt/` with a
//! reason and its cell recomputed — never silently trusted, never
//! silently overwritten.
//!
//! Cells run inside a *supervised worker*: panics are caught, a watchdog
//! cancels a wedged cell cooperatively at its next sync-point boundary
//! (see [`dct_ir::CancelToken`]), and failed cells retry with bounded
//! seeded backoff down a degradation ladder whose rungs are all
//! bit-identical (threads, fast path — never the science). A cell that
//! fails every attempt is quarantined with a structured reason; the sweep
//! keeps going. Partial results always render: a table with holes beats
//! no table.

use crate::chaos::{backoff_ms, FaultInjector, FaultSite, RetryPolicy, RetryRung};
use crate::harness::atomic_write_sync;
use crate::programs;
use dct_core::{rung_sim_options, Compiler, Strategy};
use dct_ir::{panic_message, CancelToken};
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Cell kinds, in table order: the sequential reference then the three
/// strategies at the sweep's processor count.
pub const KINDS: [&str; 4] = ["seq", "base", "comp", "full"];

/// Checkpoint schema version written (and required) by this build.
pub const CKPT_SCHEMA: i64 = 2;

/// What happened to one simulation cell.
#[derive(Clone, Debug, PartialEq)]
pub enum CellOutcome {
    /// Completed within budget.
    Cycles(u64),
    /// Aborted by the cycle / wall budget.
    Timeout,
    /// Compilation or simulation failed (message preserved).
    Failed(String),
    /// Failed every rung of the retry ladder; reason of the last attempt
    /// preserved. Quarantined cells are retried on `--resume`.
    Quarantined(String),
}

/// One checkpointed simulation cell.
#[derive(Clone, Debug, PartialEq)]
pub struct Cell {
    pub bench: String,
    pub kind: String,
    pub procs: usize,
    pub scale: f64,
    pub outcome: CellOutcome,
    /// Raw bits of the run checksum (`f64::to_bits`), when the cell
    /// completed: the bit-identity oracle for chaos runs.
    pub checksum_bits: Option<u64>,
    /// FNV-64 over checksum bits + race report + memory-profile rows
    /// (the observers that were enabled): one word that must survive
    /// every crash, retry, and restart unchanged.
    pub fingerprint: Option<u64>,
}

/// Scale as an integer key (milli-units) so float formatting can never
/// split one logical sweep across two keys.
pub fn scale_key(scale: f64) -> i64 {
    (scale * 1000.0).round() as i64
}

impl Cell {
    pub fn new(
        bench: impl Into<String>,
        kind: impl Into<String>,
        procs: usize,
        scale: f64,
        outcome: CellOutcome,
    ) -> Cell {
        Cell {
            bench: bench.into(),
            kind: kind.into(),
            procs,
            scale,
            outcome,
            checksum_bits: None,
            fingerprint: None,
        }
    }

    /// Identity of the cell within a sweep.
    pub fn key(&self) -> (String, String, usize, i64) {
        (self.bench.clone(), self.kind.clone(), self.procs, scale_key(self.scale))
    }

    /// Checkpoint file name, unique per cell identity.
    pub fn filename(&self) -> String {
        format!("{}-{}-p{}-s{}.json", self.bench, self.kind, self.procs, scale_key(self.scale))
    }
}

// ---------------------------------------------------------------- JSON --

pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// FNV-1a, 64-bit: the checkpoint content checksum and the fingerprint
/// hash. Not cryptographic — it guards against torn writes and storage
/// bit-rot, not adversaries.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Serialize a cell as one small flat JSON object (the checkpoint body).
pub fn cell_to_json(c: &Cell) -> String {
    let mut s = format!(
        "{{\"bench\":\"{}\",\"kind\":\"{}\",\"procs\":{},\"scale_milli\":{}",
        esc(&c.bench),
        esc(&c.kind),
        c.procs,
        scale_key(c.scale)
    );
    match &c.outcome {
        CellOutcome::Cycles(n) => s.push_str(&format!(",\"outcome\":\"cycles\",\"cycles\":{n}")),
        CellOutcome::Timeout => s.push_str(",\"outcome\":\"timeout\""),
        CellOutcome::Failed(e) => {
            s.push_str(&format!(",\"outcome\":\"failed\",\"error\":\"{}\"", esc(e)))
        }
        CellOutcome::Quarantined(e) => {
            s.push_str(&format!(",\"outcome\":\"quarantined\",\"error\":\"{}\"", esc(e)))
        }
    }
    // u64 payloads ride as hex strings: the flat parser's numeric path
    // is i64 and must stay that way for the existing fields.
    if let Some(b) = c.checksum_bits {
        s.push_str(&format!(",\"crcbits\":\"{b:016x}\""));
    }
    if let Some(fp) = c.fingerprint {
        s.push_str(&format!(",\"fpr\":\"{fp:016x}\""));
    }
    s.push('}');
    s
}

/// Extract `"key":"..."` from a flat JSON object (handles escapes we emit).
pub fn json_str(s: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = s.find(&pat)? + pat.len();
    let rest = &s[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    out.push(char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?);
                }
                c => out.push(c),
            },
            c => out.push(c),
        }
    }
    None
}

/// Extract a numeric field from a flat JSON object.
pub fn json_num(s: &str, key: &str) -> Option<i64> {
    let pat = format!("\"{key}\":");
    let start = s.find(&pat)? + pat.len();
    let digits: String =
        s[start..].chars().take_while(|c| c.is_ascii_digit() || *c == '-').collect();
    digits.parse().ok()
}

/// Extract a hex-string u64 field written by [`cell_to_json`].
fn json_hex(s: &str, key: &str) -> Option<u64> {
    u64::from_str_radix(&json_str(s, key)?, 16).ok()
}

/// Parse a checkpoint body produced by [`cell_to_json`]. `None` on
/// anything malformed — a truncated or foreign file is skipped, not fatal.
pub fn cell_from_json(s: &str) -> Option<Cell> {
    let bench = json_str(s, "bench")?;
    let kind = json_str(s, "kind")?;
    let procs = json_num(s, "procs")? as usize;
    let scale = json_num(s, "scale_milli")? as f64 / 1000.0;
    let outcome = match json_str(s, "outcome")?.as_str() {
        "cycles" => CellOutcome::Cycles(json_num(s, "cycles")? as u64),
        "timeout" => CellOutcome::Timeout,
        "failed" => CellOutcome::Failed(json_str(s, "error").unwrap_or_default()),
        "quarantined" => CellOutcome::Quarantined(json_str(s, "error").unwrap_or_default()),
        _ => return None,
    };
    let mut c = Cell::new(bench, kind, procs, scale, outcome);
    c.checksum_bits = json_hex(s, "crcbits");
    c.fingerprint = json_hex(s, "fpr");
    Some(c)
}

/// Wrap a cell in the versioned, checksummed checkpoint envelope:
/// `{"schema":2,"crc64":"<fnv64 of body>","cell":{...}}`.
pub fn checkpoint_to_json(c: &Cell) -> String {
    let inner = cell_to_json(c);
    format!(
        "{{\"schema\":{CKPT_SCHEMA},\"crc64\":\"{:016x}\",\"cell\":{inner}}}",
        fnv64(inner.as_bytes())
    )
}

/// Parse and *verify* a checkpoint file: schema version must match, the
/// stored checksum must match the body. `Err` carries the reason the file
/// is untrustworthy (the loader moves it to `corrupt/`). Pre-integrity
/// (v1) checkpoints — a bare flat object — are still accepted.
pub fn checkpoint_from_json(s: &str) -> Result<Cell, String> {
    if !s.contains("\"schema\"") {
        return cell_from_json(s)
            .ok_or_else(|| "unparseable legacy (v1) checkpoint".to_string());
    }
    let schema = match json_num(s, "schema") {
        Some(v) => v,
        None => return Err("schema field unreadable".to_string()),
    };
    if schema != CKPT_SCHEMA {
        return Err(format!("unsupported schema {schema} (this build reads {CKPT_SCHEMA})"));
    }
    let crc = match json_hex(s, "crc64") {
        Some(v) => v,
        None => return Err("crc64 field unreadable".to_string()),
    };
    let pat = "\"cell\":";
    let start = match s.find(pat) {
        Some(i) => i + pat.len(),
        None => return Err("cell body missing".to_string()),
    };
    let trimmed = s.trim_end();
    if trimmed.len() <= start + 1 {
        return Err("truncated cell body".to_string());
    }
    // The envelope ends `...}}`; the body is everything between `"cell":`
    // and the final closing brace.
    let inner = &trimmed[start..trimmed.len() - 1];
    let actual = fnv64(inner.as_bytes());
    if actual != crc {
        return Err(format!(
            "content checksum mismatch: stored {crc:016x}, computed {actual:016x} (corrupt checkpoint)"
        ));
    }
    cell_from_json(inner).ok_or_else(|| "unparseable cell body".to_string())
}

// --------------------------------------------------------- checkpoints --

fn fires(inj: Option<&FaultInjector>, site: FaultSite, ctx: &str) -> bool {
    inj.is_some_and(|i| i.fire(site, ctx))
}

/// Atomically and durably write one cell checkpoint (temp file + fsync +
/// rename + directory fsync), with fault-injection hooks on the write
/// path. A crash at any instant leaves either the previous state or a
/// complete checkpoint; the checksum in the envelope catches anything
/// the storage does to it afterwards.
pub fn save_cell_checked(
    dir: &Path,
    cell: &Cell,
    inj: Option<&FaultInjector>,
) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let name = cell.filename();
    let finals = dir.join(&name);
    let json = checkpoint_to_json(cell);
    if fires(inj, FaultSite::CkptWriteIo, &name) {
        return Err(io::Error::other(format!("injected: checkpoint write IO error ({name})")));
    }
    if fires(inj, FaultSite::CkptTorn, &name) {
        // Crash between temp write and rename: half the temp file lands,
        // the rename never happens. The loader must clean this up.
        let tmp = dir.join(format!(".{name}.tmp"));
        let _ = std::fs::write(&tmp, &json.as_bytes()[..json.len() / 2]);
        return Err(io::Error::other(format!(
            "injected: torn temp write, crash before rename ({name})"
        )));
    }
    atomic_write_sync(&finals, json.as_bytes())?;
    if fires(inj, FaultSite::CkptBitFlip, &name) {
        // Storage bit-rot after a clean write: flip one bit mid-file.
        if let Ok(mut bytes) = std::fs::read(&finals) {
            if !bytes.is_empty() {
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0x08;
                let _ = std::fs::write(&finals, &bytes);
            }
        }
    }
    if fires(inj, FaultSite::CkptTruncate, &name) {
        if let Ok(bytes) = std::fs::read(&finals) {
            let _ = std::fs::write(&finals, &bytes[..bytes.len() / 2]);
        }
    }
    Ok(())
}

/// [`save_cell_checked`] without fault injection (the public default).
pub fn save_cell(dir: &Path, cell: &Cell) -> io::Result<()> {
    save_cell_checked(dir, cell, None)
}

/// What a checkpoint-directory scan found.
#[derive(Debug, Default)]
pub struct LoadReport {
    /// Every verified cell, sorted by file name.
    pub cells: Vec<Cell>,
    /// Corrupt checkpoints `(file name, reason)` — moved to `corrupt/`,
    /// their cells recomputed.
    pub corrupt: Vec<(String, String)>,
    /// Files that could not be read at all `(file name, reason)` — left
    /// in place (the error may be transient), their cells recomputed.
    pub unreadable: Vec<(String, String)>,
    /// Stale `.tmp` files from crashed writes, deleted on sight.
    pub tmp_cleaned: usize,
}

/// Scan a checkpoint directory: verify every checkpoint's schema and
/// content checksum, move corrupt files into `corrupt/` (with the reason
/// on stderr and in the report — never silently recomputed over), and
/// delete stale temp files left by crashed writers.
pub fn load_report(dir: &Path, inj: Option<&FaultInjector>) -> LoadReport {
    let mut rep = LoadReport::default();
    let Ok(entries) = std::fs::read_dir(dir) else { return rep };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_file())
        .collect();
    paths.sort();
    for p in paths {
        let name = p.file_name().map(|n| n.to_string_lossy().to_string()).unwrap_or_default();
        if name.ends_with(".tmp") {
            // A crashed writer died between temp write and rename; the
            // final file never appeared, so the temp is garbage.
            let _ = std::fs::remove_file(&p);
            rep.tmp_cleaned += 1;
            continue;
        }
        if !name.ends_with(".json") {
            continue;
        }
        if fires(inj, FaultSite::CkptReadIo, &name) {
            rep.unreadable.push((name, "injected: checkpoint read IO error".to_string()));
            continue;
        }
        let text = match std::fs::read_to_string(&p) {
            Ok(t) => t,
            Err(e) => {
                rep.unreadable.push((name, e.to_string()));
                continue;
            }
        };
        match checkpoint_from_json(&text) {
            Ok(c) => rep.cells.push(c),
            Err(reason) => {
                let cdir = dir.join("corrupt");
                let _ = std::fs::create_dir_all(&cdir);
                let moved = std::fs::rename(&p, cdir.join(&name)).is_ok();
                eprintln!(
                    "[sweep: corrupt checkpoint {name}: {reason}{}]",
                    if moved { " -> corrupt/" } else { " (could not be moved)" }
                );
                rep.corrupt.push((name, reason));
            }
        }
    }
    rep
}

/// Load every verified checkpoint in `dir` (missing directory = empty).
/// Corrupt files are quarantined to `corrupt/` as a side effect; use
/// [`load_report`] to see them.
pub fn load_cells(dir: &Path) -> Vec<Cell> {
    load_report(dir, None).cells
}

// --------------------------------------------------------------- sweep --

/// Configuration of one resumable sweep.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Processor count of the parallel cells (the paper's Table 1 uses 32).
    pub procs: usize,
    /// Problem-size scale relative to the paper sizes.
    pub scale: f64,
    /// Checkpoint directory.
    pub out_dir: PathBuf,
    /// Reuse completed checkpoints instead of recomputing them. Failed
    /// and quarantined cells are retried (their failure may have been
    /// environmental); completed and timed-out cells are skipped.
    pub resume: bool,
    /// Per-cell simulated-cycle budget.
    pub max_cycles: Option<u64>,
    /// Per-cell host wall-clock budget, seconds.
    pub max_wall_secs: Option<f64>,
    /// Restrict to these benchmarks (`None` = whole suite).
    pub only: Option<Vec<String>>,
    /// Run every cell with the happens-before race detector on; a cell
    /// whose schedule races becomes a [`CellOutcome::Failed`] cell
    /// carrying the race report (detection never changes cycles, so
    /// checkpointed numbers stay comparable either way).
    pub race_check: bool,
    /// Run every cell with the memory profiler on; its rows join the
    /// cell fingerprint (pure observer — cycles unchanged).
    pub profile: bool,
    /// Sharded-engine threads inside each cell. Cells run one at a time
    /// here (checkpointing is serial by design), so the whole host
    /// budget defaults intra-cell; bit-identical at any value.
    pub threads: usize,
    /// Retry policy of the self-healing executor (attempts, backoff).
    pub retry: RetryPolicy,
    /// Watchdog: cancel an attempt that has produced nothing after this
    /// many wall seconds (cooperative — the cell dies at its next
    /// sync-point boundary). `None` = no watchdog.
    pub stuck_wall_secs: Option<f64>,
    /// Deterministic fault injection (chaos runs only; `None` in
    /// production).
    pub injector: Option<Arc<FaultInjector>>,
    /// Re-run every completed cell on the native threaded backend and
    /// fail the attempt unless its checksum is bit-identical to the
    /// simulator's (the third leg of the differential oracle).
    pub native_check: bool,
    /// Content-addressed result store: completed cells are served from it
    /// without executing, and freshly computed cells are inserted. A
    /// store insert failure is treated exactly like a checkpoint-write
    /// failure (the attempt retries). `None` = no caching.
    pub cache: Option<Arc<crate::cache::ResultStore>>,
}

impl SweepConfig {
    pub fn new(procs: usize, scale: f64, out_dir: impl Into<PathBuf>) -> SweepConfig {
        SweepConfig {
            procs,
            scale,
            out_dir: out_dir.into(),
            resume: false,
            max_cycles: None,
            max_wall_secs: None,
            only: None,
            race_check: false,
            profile: false,
            threads: dct_spmd::default_threads(),
            retry: RetryPolicy::default(),
            stuck_wall_secs: None,
            injector: None,
            native_check: false,
            cache: None,
        }
    }

    /// The cache-key inputs of one cell under this config. Note what is
    /// absent: `threads`, `fast_path`, retry policy, watchdog — every
    /// knob the bit-identity proofs cover stays out of the key.
    pub fn key_inputs<'a>(&'a self, prog: &'a dct_ir::Program, kind: &'a str, procs: usize) -> crate::cache::KeyInputs<'a> {
        crate::cache::KeyInputs {
            prog,
            kind,
            procs,
            scale_milli: scale_key(self.scale),
            race_check: self.race_check,
            profile: self.profile,
            max_cycles: self.max_cycles,
            max_wall_secs: self.max_wall_secs,
            machine: None,
        }
    }
}

/// What one supervised sweep run did, beyond the cells themselves.
#[derive(Debug, Default)]
pub struct SweepReport {
    /// All cells, in deterministic (suite, kind) order — resumed and
    /// freshly computed alike.
    pub cells: Vec<Cell>,
    /// Corrupt checkpoints quarantined during resume `(file, reason)`.
    pub corrupt: Vec<(String, String)>,
    /// Unreadable checkpoints skipped during resume `(file, reason)`.
    pub unreadable: Vec<(String, String)>,
    /// Stale temp files cleaned during resume.
    pub tmp_cleaned: usize,
    /// Failed attempts that were retried.
    pub retries: u64,
    /// Attempts aborted by the watchdog's cancellation token.
    pub cancelled: u64,
    /// Cells that exhausted the retry ladder.
    pub quarantined: u64,
    /// The sweep was killed by an injected [`FaultSite::KillSweep`]
    /// before finishing (chaos runs only); restart with `resume`.
    pub killed: bool,
    /// Cells served from the content-addressed cache without executing.
    pub cache_hits: u64,
    /// Cells that actually entered the compute path (attempt loop). A
    /// fully warm cached sweep has `executed == 0`.
    pub executed: u64,
}

/// Result of one compute attempt, before checkpointing.
struct CellSim {
    outcome: CellOutcome,
    checksum_bits: Option<u64>,
    fingerprint: Option<u64>,
}

impl CellSim {
    fn failed(msg: impl Into<String>) -> CellSim {
        CellSim { outcome: CellOutcome::Failed(msg.into()), checksum_bits: None, fingerprint: None }
    }
}

/// Simulate one cell once, on one rung, under a cancellation token,
/// catching panics. Runs on the supervised worker thread.
#[allow(clippy::too_many_arguments)]
fn compute_attempt(
    prog: &dct_ir::Program,
    cfg: &SweepConfig,
    kind: &str,
    procs: usize,
    threads: usize,
    fast_path: bool,
    token: &CancelToken,
    ctx: &str,
) -> CellSim {
    let (strategy, procs) = match kind {
        "seq" => (Strategy::Base, 1),
        "base" => (Strategy::Base, procs),
        "comp" => (Strategy::CompDecomp, procs),
        _ => (Strategy::Full, procs),
    };
    let inj = cfg.injector.as_deref();
    let params = prog.default_params();
    let body = || -> Result<CellSim, String> {
        if fires(inj, FaultSite::WorkerPanic, ctx) {
            panic!("injected: worker panic at {ctx}");
        }
        if fires(inj, FaultSite::AllocCap, ctx) {
            return Err("injected: allocation cap exceeded (simulated arena budget)".to_string());
        }
        if fires(inj, FaultSite::StuckCell, ctx) {
            // Wedge cooperatively: spin until the watchdog cancels us
            // (bounded so a watchdog-less config cannot hang forever).
            let start = Instant::now();
            while !token.is_cancelled() && start.elapsed() < Duration::from_secs(30) {
                std::thread::sleep(Duration::from_millis(2));
            }
            return Err("injected: stuck cell (cancelled by watchdog)".to_string());
        }
        let c = Compiler::new(strategy);
        let compiled = c.compile(prog).map_err(|e| e.to_string())?;
        let mut opts = rung_sim_options(compiled.rung, procs, params.clone());
        opts.max_cycles = cfg.max_cycles;
        opts.max_wall_secs = cfg.max_wall_secs;
        opts.race_detect = cfg.race_check;
        opts.profile = cfg.profile;
        opts.threads = threads.max(1);
        opts.fast_path = fast_path;
        opts.cancel = Some(token.clone());
        let r = dct_spmd::simulate(&compiled.program, &compiled.decomposition, &opts)
            .map_err(|e| e.to_string())?;
        if r.cancelled {
            return Err("cancelled at a sync-point boundary (watchdog)".to_string());
        }
        if let Some(rep) = &r.race {
            if !rep.is_race_free() {
                return Err(format!("schedule races: {rep}"));
            }
        }
        if r.timed_out {
            return Ok(CellSim {
                outcome: CellOutcome::Timeout,
                checksum_bits: None,
                fingerprint: None,
            });
        }
        // The bit-identity fingerprint: checksum bits plus every enabled
        // observer's full output. `par_regions` and friends legitimately
        // vary with the thread count and must stay out.
        let bits = r.checksum.to_bits();
        if cfg.native_check {
            native_cross_check(&compiled, &opts, bits, inj, token, ctx)?;
        }
        let mut buf = bits.to_le_bytes().to_vec();
        if let Some(rep) = &r.race {
            buf.extend_from_slice(format!("{rep:?}").as_bytes());
        }
        if let Some(mp) = &r.mem_profile {
            buf.extend_from_slice(format!("{:?}", mp.rows).as_bytes());
        }
        Ok(CellSim {
            outcome: CellOutcome::Cycles(r.cycles),
            checksum_bits: Some(bits),
            fingerprint: Some(fnv64(&buf)),
        })
    };
    match catch_unwind(AssertUnwindSafe(body)) {
        Ok(Ok(o)) => o,
        Ok(Err(e)) => CellSim::failed(e),
        Err(p) => CellSim::failed(format!("panicked: {}", panic_message(p.as_ref()))),
    }
}

/// Run the cell once more on the native threaded backend and require a
/// bit-identical checksum — the sweep-side leg of the differential
/// oracle. Injected native faults are translated into the backend's
/// worker startup hook: a planned `NativeWorkerPanic` panics one worker
/// (the backend turns it into a structured error), a planned
/// `NativeStuck` wedges one worker until the attempt's watchdog fires
/// the cancellation token. Any failure, cancellation, or divergence
/// fails the attempt; the retry ladder then heals it like any other
/// transient fault.
fn native_cross_check(
    compiled: &dct_core::Compiled,
    opts: &dct_spmd::SimOptions,
    sim_bits: u64,
    inj: Option<&FaultInjector>,
    token: &CancelToken,
    ctx: &str,
) -> Result<(), String> {
    let panic_worker = fires(inj, FaultSite::NativeWorkerPanic, ctx);
    let stuck_worker = fires(inj, FaultSite::NativeStuck, ctx);
    let hook: Option<Arc<dyn Fn(usize) + Send + Sync>> = if panic_worker || stuck_worker {
        let t = token.clone();
        let at = ctx.to_string();
        Some(Arc::new(move |p: usize| {
            if p != 0 {
                return;
            }
            if panic_worker {
                panic!("injected: native worker panic at {at}");
            }
            // Wedge cooperatively, exactly like StuckCell: spin until the
            // watchdog cancels (bounded so a watchdog-less config cannot
            // hang forever).
            let start = Instant::now();
            while !t.is_cancelled() && start.elapsed() < Duration::from_secs(30) {
                std::thread::sleep(Duration::from_millis(2));
            }
        }))
    } else {
        None
    };
    let sp = dct_spmd::lower(&compiled.program, &compiled.decomposition, opts)
        .map_err(|e| format!("native lowering: {e}"))?;
    let nopts = dct_native::NativeOptions {
        cancel: Some(token.clone()),
        jitter: None,
        worker_hook: hook,
    };
    let nr = dct_native::execute(&sp, &nopts).map_err(|e| format!("native cross-check: {e}"))?;
    if nr.cancelled {
        return Err("native cross-check cancelled at a sync boundary (watchdog)".to_string());
    }
    if nr.checksum.to_bits() != sim_bits {
        return Err(format!(
            "native cross-check diverges: native {:#018x} vs simulator {:#018x}",
            nr.checksum.to_bits(),
            sim_bits
        ));
    }
    Ok(())
}

/// Run one attempt on a supervised worker thread with a watchdog: if the
/// worker produces nothing within `stuck_wall_secs`, the supervisor fires
/// the cancellation token and the attempt dies at its next sync-point
/// boundary (then gets retried on a weaker rung).
#[allow(clippy::too_many_arguments)]
fn supervised_attempt(
    prog: &dct_ir::Program,
    cfg: &SweepConfig,
    kind: &str,
    procs: usize,
    threads: usize,
    fast_path: bool,
    token: &CancelToken,
    ctx: &str,
) -> CellSim {
    let (tx, rx) = mpsc::channel();
    std::thread::scope(|s| {
        let worker_token = token.clone();
        s.spawn(move || {
            let sim =
                compute_attempt(prog, cfg, kind, procs, threads, fast_path, &worker_token, ctx);
            let _ = tx.send(sim);
        });
        match cfg.stuck_wall_secs {
            Some(w) => match rx.recv_timeout(Duration::from_secs_f64(w.max(0.01))) {
                Ok(sim) => sim,
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    token.cancel();
                    // The cancel is cooperative: the worker notices at its
                    // next sync point and reports back. Wait for it — a
                    // detached runaway thread would race the next attempt.
                    rx.recv().unwrap_or_else(|_| CellSim::failed("worker died after watchdog cancel"))
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    CellSim::failed("worker channel closed before a result")
                }
            },
            None => rx.recv().unwrap_or_else(|_| CellSim::failed("worker channel closed before a result")),
        }
    })
}

/// Compute one cell through the full self-healing protocol: bounded
/// retries with seeded backoff down the bit-identical degradation ladder,
/// watchdog cancellation, checkpointing (with its own faults retried),
/// quarantine after the last attempt.
fn compute_cell_supervised(
    prog: &dct_ir::Program,
    cfg: &SweepConfig,
    bench: &str,
    kind: &str,
    procs: usize,
    rep: &mut SweepReport,
) -> Cell {
    let inj = cfg.injector.as_deref();
    let max_attempts = cfg.retry.max_attempts.max(1);
    let cell_id = format!("{bench}/{kind}");
    // Content-addressed cache: a completed or timed-out cell whose key
    // matches is served without executing anything. Failed/quarantined
    // entries are never cached, so a cached cell is always trustworthy
    // (and crc64-verified on read).
    let cache_key = cfg.cache.as_deref().and_then(|_| {
        match crate::cache::cell_cache_key(bench, &cfg.key_inputs(prog, kind, procs)) {
            Ok(k) => Some(k),
            Err(e) => {
                eprintln!("[cache: {cell_id}: key derivation failed ({e}); cell will not be cached]");
                None
            }
        }
    });
    if let (Some(store), Some(key)) = (cfg.cache.as_deref(), cache_key.as_ref()) {
        if let Some(cell) = store.lookup_cell(key) {
            if matches!(cell.outcome, CellOutcome::Cycles(_) | CellOutcome::Timeout) {
                // Keep the checkpoint record consistent so `--resume`
                // and partial-table rendering see the cell either way.
                let _ = save_cell_checked(&cfg.out_dir, &cell, inj);
                rep.cache_hits += 1;
                return cell;
            }
        }
    }
    rep.executed += 1;
    let mut last_err = "no attempt was made".to_string();
    for attempt in 0..max_attempts {
        let rung = RetryRung::for_attempt(attempt);
        let (threads, fast_path) = rung.params(cfg.threads);
        let token = CancelToken::new();
        let ctx = format!("{cell_id} attempt {} (rung {})", attempt + 1, rung.label());
        let sim = supervised_attempt(prog, cfg, kind, procs, threads, fast_path, &token, &ctx);
        if token.is_cancelled() {
            rep.cancelled += 1;
        }
        match &sim.outcome {
            CellOutcome::Cycles(_) | CellOutcome::Timeout => {
                let mut cell = Cell::new(bench, kind, procs, cfg.scale, sim.outcome);
                cell.checksum_bits = sim.checksum_bits;
                cell.fingerprint = sim.fingerprint;
                match save_cell_checked(&cfg.out_dir, &cell, inj)
                    .and_then(|()| match (cfg.cache.as_deref(), cache_key.as_ref()) {
                        // The cache is part of the durable record: a cell
                        // that could not be inserted retries the whole
                        // attempt, exactly like a failed checkpoint (this
                        // is where `cache-write-io` faults land and heal).
                        (Some(store), Some(key)) => store.insert_cell(key, &cell, inj),
                        _ => Ok(()),
                    }) {
                    Ok(()) => {
                        if attempt > 0 {
                            eprintln!(
                                "[sweep: {cell_id} recovered on attempt {} (rung {})]",
                                attempt + 1,
                                rung.label()
                            );
                        }
                        return cell;
                    }
                    Err(e) => {
                        // The checkpoint is the record; a cell that was
                        // computed but not durably recorded is an
                        // unfinished cell. Retry the whole attempt.
                        last_err = format!(
                            "attempt {} (rung {}): durable record write failed: {e}",
                            attempt + 1,
                            rung.label()
                        );
                    }
                }
            }
            CellOutcome::Failed(e) | CellOutcome::Quarantined(e) => {
                last_err = format!("attempt {} (rung {}): {e}", attempt + 1, rung.label());
            }
        }
        if attempt + 1 < max_attempts {
            rep.retries += 1;
            let wait = backoff_ms(&cfg.retry, &cell_id, attempt);
            if wait > 0 {
                std::thread::sleep(Duration::from_millis(wait));
            }
        }
    }
    rep.quarantined += 1;
    eprintln!("[sweep: {cell_id} QUARANTINED after {max_attempts} attempt(s): {last_err}]");
    let cell = Cell::new(bench, kind, procs, cfg.scale, CellOutcome::Quarantined(last_err));
    // Best effort: a quarantine record on disk beats losing the reason,
    // but a failing disk must not mask the quarantine itself.
    let _ = save_cell_checked(&cfg.out_dir, &cell, inj);
    cell
}

/// What one supervised single-cell run did (the serve queue's unit of
/// work): the cell plus the recovery counters its computation cost.
#[derive(Debug)]
pub struct CellRun {
    pub cell: Cell,
    pub retries: u64,
    pub cancelled: u64,
    pub quarantined: u64,
    /// True when the cell was served from the content-addressed cache
    /// without executing.
    pub cache_hit: bool,
}

/// Compute exactly one cell through the full self-healing protocol —
/// cache lookup, supervised attempts down the retry ladder, watchdog,
/// checkpoint + cache insert, quarantine. This is the sweep loop's own
/// per-cell path, exposed for the job-queue service (dct-serve), so a
/// queued cell and a swept cell can never diverge in behavior.
pub fn run_cell_supervised(
    prog: &dct_ir::Program,
    cfg: &SweepConfig,
    bench: &str,
    kind: &str,
    procs: usize,
) -> CellRun {
    let mut rep = SweepReport::default();
    let cell = compute_cell_supervised(prog, cfg, bench, kind, procs, &mut rep);
    CellRun {
        cell,
        retries: rep.retries,
        cancelled: rep.cancelled,
        quarantined: rep.quarantined,
        cache_hit: rep.cache_hits > 0,
    }
}

/// Run (or resume) a sweep under the self-healing executor. Every missing
/// cell is simulated on a supervised worker and checkpointed the moment
/// it finishes; the report carries everything the run had to survive.
pub fn run_sweep_supervised(cfg: &SweepConfig) -> io::Result<SweepReport> {
    eprintln!(
        "[thread budget: 1 cell in flight x {} intra-cell thread(s) (checkpointed sweep is serial)]",
        cfg.threads.max(1)
    );
    let inj = cfg.injector.as_deref();
    let mut rep = SweepReport::default();
    let done: Vec<Cell> = if cfg.resume {
        let lr = load_report(&cfg.out_dir, inj);
        rep.corrupt = lr.corrupt;
        rep.unreadable = lr.unreadable;
        rep.tmp_cleaned = lr.tmp_cleaned;
        lr.cells
    } else {
        Vec::new()
    };
    let suite = programs::suite(cfg.scale);
    'cells: for b in &suite {
        if let Some(only) = &cfg.only {
            if !only.iter().any(|n| n == b.name) {
                continue;
            }
        }
        for kind in KINDS {
            let procs = if kind == "seq" { 1 } else { cfg.procs };
            let key = (b.name.to_string(), kind.to_string(), procs, scale_key(cfg.scale));
            if let Some(prev) = done.iter().find(|c| {
                c.key() == key
                    && matches!(c.outcome, CellOutcome::Cycles(_) | CellOutcome::Timeout)
            }) {
                rep.cells.push(prev.clone());
                continue;
            }
            let cell = compute_cell_supervised(&b.program, cfg, b.name, kind, procs, &mut rep);
            rep.cells.push(cell);
            if fires(inj, FaultSite::KillSweep, &format!("after {}/{kind}", b.name)) {
                eprintln!(
                    "[sweep: injected kill after {}/{kind} — restart with --resume to continue]",
                    b.name
                );
                rep.killed = true;
                break 'cells;
            }
        }
    }
    Ok(rep)
}

/// Run (or resume) a sweep; cells only. See [`run_sweep_supervised`] for
/// the full report.
pub fn run_sweep(cfg: &SweepConfig) -> io::Result<Vec<Cell>> {
    run_sweep_supervised(cfg).map(|r| r.cells)
}

/// Render whatever cells exist as a (possibly partial) Table 1: holes
/// print `-`, budget aborts print `timeout`, failures print `fail`,
/// quarantined cells print `quar`.
pub fn render_sweep(cells: &[Cell], procs: usize, scale: f64) -> String {
    let mut benches: Vec<&str> = Vec::new();
    for c in cells {
        if scale_key(c.scale) == scale_key(scale) && !benches.contains(&c.bench.as_str()) {
            benches.push(&c.bench);
        }
    }
    let find = |bench: &str, kind: &str| -> Option<&Cell> {
        let p = if kind == "seq" { 1 } else { procs };
        cells.iter().find(|c| {
            c.bench == bench && c.kind == kind && c.procs == p && scale_key(c.scale) == scale_key(scale)
        })
    };
    let mut out = format!(
        "Sweep at {procs} processors, scale {scale} (speedups vs sequential; partial cells allowed)\n"
    );
    out.push_str("program      seq-cycles      base      comp      full\n");
    for bench in benches {
        let seq = match find(bench, "seq").map(|c| &c.outcome) {
            Some(CellOutcome::Cycles(n)) => Some(*n),
            _ => None,
        };
        let col = |kind: &str| -> String {
            match find(bench, kind).map(|c| &c.outcome) {
                Some(CellOutcome::Cycles(n)) => match seq {
                    Some(s) => format!("{:>9.1}", s as f64 / *n as f64),
                    // No sequential reference to divide by: label the raw
                    // cycle count so it cannot be misread as a speedup.
                    None => format!("{:>9}", format!("{n}cy")),
                },
                Some(CellOutcome::Timeout) => format!("{:>9}", "timeout"),
                Some(CellOutcome::Failed(_)) => format!("{:>9}", "fail"),
                Some(CellOutcome::Quarantined(_)) => format!("{:>9}", "quar"),
                None => format!("{:>9}", "-"),
            }
        };
        let seqcol = match find(bench, "seq").map(|c| &c.outcome) {
            Some(CellOutcome::Cycles(n)) => format!("{n:>10}"),
            Some(CellOutcome::Timeout) => format!("{:>10}", "timeout"),
            Some(CellOutcome::Failed(_)) => format!("{:>10}", "fail"),
            Some(CellOutcome::Quarantined(_)) => format!("{:>10}", "quar"),
            None => format!("{:>10}", "-"),
        };
        out.push_str(&format!(
            "{:<12} {}{}{}{}\n",
            bench,
            seqcol,
            col("base"),
            col("comp"),
            col("full")
        ));
        for kind in ["full", "seq"] {
            match find(bench, kind).map(|c| &c.outcome) {
                Some(CellOutcome::Failed(e)) => {
                    out.push_str(&format!("             ! {kind}: {e}\n"));
                }
                Some(CellOutcome::Quarantined(e)) => {
                    out.push_str(&format!("             ! {kind} quarantined: {e}\n"));
                }
                _ => {}
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        for outcome in [
            CellOutcome::Cycles(1234567),
            CellOutcome::Timeout,
            CellOutcome::Failed("weird \"quote\"\nnewline".to_string()),
            CellOutcome::Quarantined("attempt 4 (rung reference-walk): boom".to_string()),
        ] {
            let mut c = Cell::new("lu", "full", 32, 0.25, outcome.clone());
            c.checksum_bits = Some(0xdead_beef_0bad_f00d);
            c.fingerprint = Some(7);
            let back = cell_from_json(&cell_to_json(&c)).expect("roundtrip");
            assert_eq!(back.bench, "lu");
            assert_eq!(back.kind, "full");
            assert_eq!(back.procs, 32);
            assert_eq!(scale_key(back.scale), 250);
            assert_eq!(back.outcome, outcome);
            assert_eq!(back.checksum_bits, Some(0xdead_beef_0bad_f00d));
            assert_eq!(back.fingerprint, Some(7));
        }
    }

    #[test]
    fn truncated_checkpoint_is_skipped_not_fatal() {
        assert!(cell_from_json("{\"bench\":\"lu\",\"kind\":\"fu").is_none());
        assert!(cell_from_json("").is_none());
        assert!(cell_from_json("not json at all").is_none());
    }

    #[test]
    fn checkpoint_envelope_roundtrip_and_verification() {
        let c = Cell::new("adi", "comp", 16, 0.5, CellOutcome::Cycles(42));
        let json = checkpoint_to_json(&c);
        assert!(json.contains("\"schema\":2"), "{json}");
        let back = checkpoint_from_json(&json).expect("verified checkpoint parses");
        assert_eq!(back, c);

        // Any single flipped bit in the body must be caught.
        let mut corrupt = json.clone().into_bytes();
        let mid = corrupt.len() / 2;
        corrupt[mid] ^= 0x08;
        let corrupt = String::from_utf8_lossy(&corrupt).to_string();
        let err = checkpoint_from_json(&corrupt).expect_err("bit flip must not verify");
        assert!(
            err.contains("checksum mismatch")
                || err.contains("unreadable")
                || err.contains("missing")
                || err.contains("schema"),
            "unhelpful reason: {err}"
        );

        // Truncation must be caught.
        let half = &json[..json.len() / 2];
        assert!(checkpoint_from_json(half).is_err(), "truncated envelope must not verify");

        // Legacy v1 (bare body, no envelope) still loads.
        let legacy = cell_to_json(&c);
        let back = checkpoint_from_json(&legacy).expect("legacy v1 accepted");
        assert_eq!(back, c);

        // Future schema is refused with a reason, not misread.
        let future = json.replace("\"schema\":2", "\"schema\":3");
        let err = checkpoint_from_json(&future).expect_err("future schema refused");
        assert!(err.contains("schema 3"), "{err}");
    }

    #[test]
    fn fnv64_is_stable() {
        // Pinned values: checkpoints written by one build must verify in
        // the next. Changing fnv64 is a schema change.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
    }
}
