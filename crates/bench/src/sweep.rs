//! Crash-safe, resumable benchmark sweeps.
//!
//! Every simulation cell — one `(benchmark, strategy-kind, procs, scale)`
//! point — is checkpointed to its own JSON file under the results
//! directory the moment it finishes, written atomically (temp file +
//! rename) so a kill at any instant leaves either the previous state or a
//! complete checkpoint, never a torn file. A `--resume` sweep reloads the
//! checkpoints and only simulates the cells that are missing; runaway
//! simulations are bounded by per-cell cycle / wall budgets and abort
//! into structured [`CellOutcome::Timeout`] cells instead of hanging the
//! sweep. Partial results always render: a table with holes beats no
//! table.

use crate::programs;
use dct_core::{rung_sim_options, Compiler, Strategy};
use dct_ir::panic_message;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// Cell kinds, in table order: the sequential reference then the three
/// strategies at the sweep's processor count.
pub const KINDS: [&str; 4] = ["seq", "base", "comp", "full"];

/// What happened to one simulation cell.
#[derive(Clone, Debug, PartialEq)]
pub enum CellOutcome {
    /// Completed within budget.
    Cycles(u64),
    /// Aborted by the cycle / wall budget.
    Timeout,
    /// Compilation or simulation failed (message preserved).
    Failed(String),
}

/// One checkpointed simulation cell.
#[derive(Clone, Debug)]
pub struct Cell {
    pub bench: String,
    pub kind: String,
    pub procs: usize,
    pub scale: f64,
    pub outcome: CellOutcome,
}

/// Scale as an integer key (milli-units) so float formatting can never
/// split one logical sweep across two keys.
fn scale_key(scale: f64) -> i64 {
    (scale * 1000.0).round() as i64
}

impl Cell {
    /// Identity of the cell within a sweep.
    pub fn key(&self) -> (String, String, usize, i64) {
        (self.bench.clone(), self.kind.clone(), self.procs, scale_key(self.scale))
    }

    /// Checkpoint file name, unique per cell identity.
    pub fn filename(&self) -> String {
        format!("{}-{}-p{}-s{}.json", self.bench, self.kind, self.procs, scale_key(self.scale))
    }
}

// ---------------------------------------------------------------- JSON --

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serialize a cell as one small JSON object.
pub fn cell_to_json(c: &Cell) -> String {
    let mut s = format!(
        "{{\"bench\":\"{}\",\"kind\":\"{}\",\"procs\":{},\"scale_milli\":{}",
        esc(&c.bench),
        esc(&c.kind),
        c.procs,
        scale_key(c.scale)
    );
    match &c.outcome {
        CellOutcome::Cycles(n) => s.push_str(&format!(",\"outcome\":\"cycles\",\"cycles\":{n}")),
        CellOutcome::Timeout => s.push_str(",\"outcome\":\"timeout\""),
        CellOutcome::Failed(e) => {
            s.push_str(&format!(",\"outcome\":\"failed\",\"error\":\"{}\"", esc(e)))
        }
    }
    s.push('}');
    s
}

/// Extract `"key":"..."` from a flat JSON object (handles escapes we emit).
fn json_str(s: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = s.find(&pat)? + pat.len();
    let rest = &s[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = (0..4).filter_map(|_| chars.next()).collect();
                    out.push(char::from_u32(u32::from_str_radix(&hex, 16).ok()?)?);
                }
                c => out.push(c),
            },
            c => out.push(c),
        }
    }
    None
}

/// Extract a numeric field from a flat JSON object.
fn json_num(s: &str, key: &str) -> Option<i64> {
    let pat = format!("\"{key}\":");
    let start = s.find(&pat)? + pat.len();
    let digits: String =
        s[start..].chars().take_while(|c| c.is_ascii_digit() || *c == '-').collect();
    digits.parse().ok()
}

/// Parse a checkpoint produced by [`cell_to_json`]. `None` on anything
/// malformed — a truncated or foreign file is skipped, not fatal.
pub fn cell_from_json(s: &str) -> Option<Cell> {
    let bench = json_str(s, "bench")?;
    let kind = json_str(s, "kind")?;
    let procs = json_num(s, "procs")? as usize;
    let scale = json_num(s, "scale_milli")? as f64 / 1000.0;
    let outcome = match json_str(s, "outcome")?.as_str() {
        "cycles" => CellOutcome::Cycles(json_num(s, "cycles")? as u64),
        "timeout" => CellOutcome::Timeout,
        "failed" => CellOutcome::Failed(json_str(s, "error").unwrap_or_default()),
        _ => return None,
    };
    Some(Cell { bench, kind, procs, scale, outcome })
}

// --------------------------------------------------------- checkpoints --

/// Atomically write one cell checkpoint: temp file in the same directory,
/// then rename (rename is atomic on POSIX), so a crash mid-write can
/// never leave a torn checkpoint behind.
pub fn save_cell(dir: &Path, cell: &Cell) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let finals = dir.join(cell.filename());
    let tmp = dir.join(format!(".{}.tmp", cell.filename()));
    std::fs::write(&tmp, cell_to_json(cell))?;
    std::fs::rename(&tmp, &finals)?;
    Ok(())
}

/// Load every parseable checkpoint in `dir` (missing directory = empty).
pub fn load_cells(dir: &Path) -> Vec<Cell> {
    let mut cells = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else { return cells };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    paths.sort();
    for p in paths {
        if let Ok(text) = std::fs::read_to_string(&p) {
            if let Some(c) = cell_from_json(&text) {
                cells.push(c);
            }
        }
    }
    cells
}

// --------------------------------------------------------------- sweep --

/// Configuration of one resumable sweep.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Processor count of the parallel cells (the paper's Table 1 uses 32).
    pub procs: usize,
    /// Problem-size scale relative to the paper sizes.
    pub scale: f64,
    /// Checkpoint directory.
    pub out_dir: PathBuf,
    /// Reuse completed checkpoints instead of recomputing them. Failed
    /// cells are retried (their failure may have been environmental);
    /// completed and timed-out cells are skipped.
    pub resume: bool,
    /// Per-cell simulated-cycle budget.
    pub max_cycles: Option<u64>,
    /// Per-cell host wall-clock budget, seconds.
    pub max_wall_secs: Option<f64>,
    /// Restrict to these benchmarks (`None` = whole suite).
    pub only: Option<Vec<String>>,
    /// Run every cell with the happens-before race detector on; a cell
    /// whose schedule races becomes a [`CellOutcome::Failed`] cell
    /// carrying the race report (detection never changes cycles, so
    /// checkpointed numbers stay comparable either way).
    pub race_check: bool,
    /// Sharded-engine threads inside each cell. Cells run one at a time
    /// here (checkpointing is serial by design), so the whole host
    /// budget defaults intra-cell; bit-identical at any value.
    pub threads: usize,
}

impl SweepConfig {
    pub fn new(procs: usize, scale: f64, out_dir: impl Into<PathBuf>) -> SweepConfig {
        SweepConfig {
            procs,
            scale,
            out_dir: out_dir.into(),
            resume: false,
            max_cycles: None,
            max_wall_secs: None,
            only: None,
            race_check: false,
            threads: dct_spmd::default_threads(),
        }
    }
}

/// Simulate one cell under the budget, catching panics.
fn compute_cell(
    prog: &dct_ir::Program,
    cfg: &SweepConfig,
    kind: &str,
    procs: usize,
) -> CellOutcome {
    let (strategy, procs) = match kind {
        "seq" => (Strategy::Base, 1),
        "base" => (Strategy::Base, procs),
        "comp" => (Strategy::CompDecomp, procs),
        _ => (Strategy::Full, procs),
    };
    let params = prog.default_params();
    let body = || -> Result<CellOutcome, String> {
        let c = Compiler::new(strategy);
        let compiled = c.compile(prog).map_err(|e| e.to_string())?;
        let mut opts = rung_sim_options(compiled.rung, procs, params.clone());
        opts.max_cycles = cfg.max_cycles;
        opts.max_wall_secs = cfg.max_wall_secs;
        opts.race_detect = cfg.race_check;
        opts.threads = cfg.threads.max(1);
        let r = dct_spmd::simulate(&compiled.program, &compiled.decomposition, &opts)
            .map_err(|e| e.to_string())?;
        if let Some(rep) = &r.race {
            if !rep.is_race_free() {
                return Err(format!("schedule races: {rep}"));
            }
        }
        Ok(if r.timed_out { CellOutcome::Timeout } else { CellOutcome::Cycles(r.cycles) })
    };
    match catch_unwind(AssertUnwindSafe(body)) {
        Ok(Ok(o)) => o,
        Ok(Err(e)) => CellOutcome::Failed(e),
        Err(p) => CellOutcome::Failed(format!("panicked: {}", panic_message(p.as_ref()))),
    }
}

/// Run (or resume) a sweep: every missing cell is simulated and
/// checkpointed the moment it finishes. Returns all cells of the sweep in
/// deterministic (suite, kind) order — including the ones reloaded from
/// checkpoints.
pub fn run_sweep(cfg: &SweepConfig) -> io::Result<Vec<Cell>> {
    eprintln!(
        "[thread budget: 1 cell in flight x {} intra-cell thread(s) (checkpointed sweep is serial)]",
        cfg.threads.max(1)
    );
    let suite = programs::suite(cfg.scale);
    let done: Vec<Cell> = if cfg.resume { load_cells(&cfg.out_dir) } else { Vec::new() };
    let mut out = Vec::new();
    for b in &suite {
        if let Some(only) = &cfg.only {
            if !only.iter().any(|n| n == b.name) {
                continue;
            }
        }
        for kind in KINDS {
            let procs = if kind == "seq" { 1 } else { cfg.procs };
            let key = (b.name.to_string(), kind.to_string(), procs, scale_key(cfg.scale));
            if let Some(prev) = done
                .iter()
                .find(|c| c.key() == key && !matches!(c.outcome, CellOutcome::Failed(_)))
            {
                out.push(prev.clone());
                continue;
            }
            let cell = Cell {
                bench: b.name.to_string(),
                kind: kind.to_string(),
                procs,
                scale: cfg.scale,
                outcome: compute_cell(&b.program, cfg, kind, procs),
            };
            save_cell(&cfg.out_dir, &cell)?;
            out.push(cell);
        }
    }
    Ok(out)
}

/// Render whatever cells exist as a (possibly partial) Table 1: holes
/// print `-`, budget aborts print `timeout`, failures print `fail`.
pub fn render_sweep(cells: &[Cell], procs: usize, scale: f64) -> String {
    let mut benches: Vec<&str> = Vec::new();
    for c in cells {
        if scale_key(c.scale) == scale_key(scale) && !benches.contains(&c.bench.as_str()) {
            benches.push(&c.bench);
        }
    }
    let find = |bench: &str, kind: &str| -> Option<&Cell> {
        let p = if kind == "seq" { 1 } else { procs };
        cells.iter().find(|c| {
            c.bench == bench && c.kind == kind && c.procs == p && scale_key(c.scale) == scale_key(scale)
        })
    };
    let mut out = format!(
        "Sweep at {procs} processors, scale {scale} (speedups vs sequential; partial cells allowed)\n"
    );
    out.push_str("program      seq-cycles      base      comp      full\n");
    for bench in benches {
        let seq = match find(bench, "seq").map(|c| &c.outcome) {
            Some(CellOutcome::Cycles(n)) => Some(*n),
            _ => None,
        };
        let col = |kind: &str| -> String {
            match find(bench, kind).map(|c| &c.outcome) {
                Some(CellOutcome::Cycles(n)) => match seq {
                    Some(s) => format!("{:>9.1}", s as f64 / *n as f64),
                    // No sequential reference to divide by: label the raw
                    // cycle count so it cannot be misread as a speedup.
                    None => format!("{:>9}", format!("{n}cy")),
                },
                Some(CellOutcome::Timeout) => format!("{:>9}", "timeout"),
                Some(CellOutcome::Failed(_)) => format!("{:>9}", "fail"),
                None => format!("{:>9}", "-"),
            }
        };
        let seqcol = match find(bench, "seq").map(|c| &c.outcome) {
            Some(CellOutcome::Cycles(n)) => format!("{n:>10}"),
            Some(CellOutcome::Timeout) => format!("{:>10}", "timeout"),
            Some(CellOutcome::Failed(_)) => format!("{:>10}", "fail"),
            None => format!("{:>10}", "-"),
        };
        out.push_str(&format!(
            "{:<12} {}{}{}{}\n",
            bench,
            seqcol,
            col("base"),
            col("comp"),
            col("full")
        ));
        if let Some(CellOutcome::Failed(e)) = find(bench, "full").map(|c| &c.outcome) {
            out.push_str(&format!("             ! full: {e}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        for outcome in [
            CellOutcome::Cycles(1234567),
            CellOutcome::Timeout,
            CellOutcome::Failed("weird \"quote\"\nnewline".to_string()),
        ] {
            let c = Cell {
                bench: "lu".into(),
                kind: "full".into(),
                procs: 32,
                scale: 0.25,
                outcome: outcome.clone(),
            };
            let back = cell_from_json(&cell_to_json(&c)).unwrap();
            assert_eq!(back.bench, "lu");
            assert_eq!(back.kind, "full");
            assert_eq!(back.procs, 32);
            assert_eq!(scale_key(back.scale), 250);
            assert_eq!(back.outcome, outcome);
        }
    }

    #[test]
    fn truncated_checkpoint_is_skipped_not_fatal() {
        assert!(cell_from_json("{\"bench\":\"lu\",\"kind\":\"fu").is_none());
        assert!(cell_from_json("").is_none());
        assert!(cell_from_json("not json at all").is_none());
    }
}
