use dct_bench::programs;
use dct_core::{sequential_cycles, speedup_curve, Strategy};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).map(|s| s.as_str()).unwrap_or("stencil");
    let prog = match which {
        "stencil" => programs::stencil(512, 3),
        "lu" => programs::lu(256),
        "adi" => programs::adi(256, 3),
        "vpenta" => programs::vpenta(128, 3),
        "erlebacher" => programs::erlebacher(64),
        "swm" => programs::swm256(257, 3),
        "tomcatv" => programs::tomcatv(257, 3),
        _ => panic!(),
    };
    let params = prog.default_params();
    let t0 = Instant::now();
    let seq = sequential_cycles(&prog, &params).expect("sequential reference failed");
    println!("{which}: seq={seq} ({:?})", t0.elapsed());
    let procs = [2usize, 8, 16, 31, 32];
    for s in Strategy::ALL {
        let t0 = Instant::now();
        let curve = speedup_curve(&prog, s, &procs, &params, seq).expect("speedup curve failed");
        let pts: Vec<String> = curve.iter().map(|p| format!("{}:{:.1}", p.procs, p.speedup)).collect();
        println!("  {:28} {}  ({:?})", s.label(), pts.join(" "), t0.elapsed());
    }
}
