//! Ablation experiments for the design choices DESIGN.md calls out:
//! address-calculation optimizations, barrier elision, folding-function
//! choice, grid rank, and cache-line size (false-sharing sensitivity).
//! Each returns simulated cycles per variant so the effect of one design
//! decision is isolated.

use crate::programs;
use dct_core::{Compiler, Strategy};
use dct_machine::MachineConfig;
use dct_spmd::{simulate, SimOptions};

/// One ablation: a label and the cycles of each variant.
#[derive(Clone, Debug)]
pub struct Ablation {
    pub name: String,
    pub variants: Vec<(String, u64)>,
}

impl Ablation {
    pub fn render(&self) -> String {
        let mut out = format!("# ablation: {}\n", self.name);
        let best = self.variants.iter().map(|v| v.1).min().unwrap_or(1);
        for (label, cycles) in &self.variants {
            out.push_str(&format!(
                "{label:<28} {cycles:>14} cycles  ({:.2}x of best)\n",
                *cycles as f64 / best as f64
            ));
        }
        out
    }
}

fn full_opts(procs: usize, params: Vec<i64>) -> SimOptions {
    Compiler::new(Strategy::Full).sim_options(procs, params)
}

/// Section 4.3: the div/mod address optimizations on transformed arrays.
/// The paper calls them "important and effective"; without them, every
/// access to a strip-mined array pays an integer divide + modulo.
pub fn ablate_addropt(procs: usize, scale: f64) -> Ablation {
    let s = |n: i64| ((n as f64 * scale).round() as i64).max(16);
    let prog = programs::vpenta(s(128), 3);
    let compiled = Compiler::new(Strategy::Full).compile(&prog).unwrap();
    let params = prog.default_params();
    let mut variants = Vec::new();
    for (label, on) in [("address optimizations ON", true), ("address optimizations OFF", false)] {
        let mut o = full_opts(procs, params.clone());
        o.addr_opt = on;
        let r = simulate(&compiled.program, &compiled.decomposition, &o).unwrap();
        variants.push((label.to_string(), r.cycles));
    }
    Ablation { name: "addropt (vpenta, Section 4.3)".into(), variants }
}

/// Barrier elision (the synchronization optimization the paper credits for
/// vpenta's comp-decomp gain over base).
pub fn ablate_barrier_elision(procs: usize, scale: f64) -> Ablation {
    let s = |n: i64| ((n as f64 * scale).round() as i64).max(16);
    let prog = programs::vpenta(s(128), 3);
    let compiled = Compiler::new(Strategy::Full).compile(&prog).unwrap();
    let params = prog.default_params();
    let mut variants = Vec::new();
    for (label, on) in [("barrier elision ON", true), ("barrier elision OFF", false)] {
        let mut o = full_opts(procs, params.clone());
        o.barrier_elision = on;
        let r = simulate(&compiled.program, &compiled.decomposition, &o).unwrap();
        variants.push((format!("{label} ({} barriers)", r.barriers), r.cycles));
    }
    Ablation { name: "barrier elision (vpenta)".into(), variants }
}

/// Folding choice for LU: the paper selects CYCLIC for load balance; BLOCK
/// leaves the trailing processors idle as the pivot advances.
pub fn ablate_folding_lu(procs: usize, scale: f64) -> Ablation {
    let s = |n: i64| ((n as f64 * scale).round() as i64).max(16);
    let prog = programs::lu(s(256));
    let compiled = Compiler::new(Strategy::Full).compile(&prog).unwrap();
    let params = prog.default_params();
    let mut variants = Vec::new();
    for folding in [dct_decomp::Folding::Cyclic, dct_decomp::Folding::Block] {
        let mut dec = compiled.decomposition.clone();
        dec.foldings = vec![folding];
        let o = full_opts(procs, params.clone());
        let r = simulate(&compiled.program, &dec, &o).unwrap();
        variants.push((format!("{} columns", folding.hpf()), r.cycles));
    }
    Ablation { name: "folding for LU (load balance)".into(), variants }
}

/// Grid rank for the stencil: 2-D blocks (the algorithm's choice) vs a
/// 1-D column distribution, both with the data transformation.
pub fn ablate_grid_stencil(procs: usize, scale: f64) -> Ablation {
    let s = |n: i64| ((n as f64 * scale).round() as i64).max(16);
    let prog = programs::stencil(s(512), 5);
    let compiled = Compiler::new(Strategy::Full).compile(&prog).unwrap();
    let params = prog.default_params();
    let mut variants = Vec::new();

    let o = full_opts(procs, params.clone());
    let r2 = simulate(&compiled.program, &compiled.decomposition, &o).unwrap();
    variants.push(("2-D blocks".to_string(), r2.cycles));

    // Truncate the decomposition to rank 1.
    let mut dec1 = compiled.decomposition.clone();
    dec1.grid_rank = 1;
    dec1.foldings.truncate(1);
    for c in &mut dec1.comp {
        c.rows.truncate(1);
    }
    for d in &mut dec1.data {
        d.dists.retain(|ad| ad.proc_dim == 0);
    }
    let r1 = simulate(&compiled.program, &dec1, &o).unwrap();
    variants.push(("1-D blocks".to_string(), r1.cycles));

    Ablation { name: "grid rank for stencil (comm/comp ratio)".into(), variants }
}

/// False-sharing sensitivity: the comp-decomp stencil (2-D blocks over the
/// FORTRAN layout) under growing cache-line sizes. Longer lines widen the
/// falsely shared boundary.
pub fn ablate_linesize_stencil(procs: usize, scale: f64) -> Ablation {
    let s = |n: i64| ((n as f64 * scale).round() as i64).max(16);
    let prog = programs::stencil(s(512), 5);
    let compiled = Compiler::new(Strategy::CompDecomp).compile(&prog).unwrap();
    let params = prog.default_params();
    let mut variants = Vec::new();
    for line in [16usize, 32, 64, 128] {
        let mut mc = MachineConfig::dash(procs);
        mc.line_bytes = line;
        let mut o = Compiler::new(Strategy::CompDecomp).sim_options(procs, params.clone());
        o.machine = Some(mc);
        let r = simulate(&compiled.program, &compiled.decomposition, &o).unwrap();
        variants.push((format!("{line}-byte lines"), r.cycles));
    }
    Ablation { name: "cache-line size vs false sharing (stencil, comp-decomp)".into(), variants }
}

/// All ablations in DESIGN.md order.
pub fn all_ablations(procs: usize, scale: f64) -> Vec<Ablation> {
    vec![
        ablate_addropt(procs, scale),
        ablate_barrier_elision(procs, scale),
        ablate_folding_lu(procs, scale),
        ablate_grid_stencil(procs, scale),
        ablate_linesize_stencil(procs, scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Each ablation must point in the documented direction at a small
    /// scale.
    #[test]
    fn ablation_directions() {
        let a = ablate_addropt(8, 0.25);
        assert!(a.variants[0].1 < a.variants[1].1, "addropt must help: {a:?}");

        let b = ablate_barrier_elision(8, 0.25);
        assert!(b.variants[0].1 <= b.variants[1].1, "elision must not hurt: {b:?}");

        let f = ablate_folding_lu(8, 0.25);
        assert!(f.variants[0].1 < f.variants[1].1, "cyclic must beat block for LU: {f:?}");
    }

    #[test]
    fn linesize_sharing_bytes_grow() {
        // Wider lines widen the falsely-shared boundary: the *bytes*
        // invalidated must not shrink (event counts may, since one
        // invalidation now covers a wider line).
        let prog = programs::stencil(64, 2);
        let compiled = Compiler::new(Strategy::CompDecomp).compile(&prog).unwrap();
        let params = prog.default_params();
        let mut measured = Vec::new();
        for line in [16usize, 64] {
            let mut mc = MachineConfig::dash(8);
            mc.line_bytes = line;
            let mut o = Compiler::new(Strategy::CompDecomp).sim_options(8, params.clone());
            o.machine = Some(mc);
            let r = simulate(&compiled.program, &compiled.decomposition, &o).unwrap();
            let inv = r.stats.total().invalidations_received;
            assert!(inv > 0, "2-D blocks over FORTRAN layout must exhibit sharing");
            measured.push(inv * line as u64);
        }
        assert!(
            measured[1] >= measured[0],
            "invalidated bytes must not shrink with longer lines: {measured:?}"
        );
    }
}
