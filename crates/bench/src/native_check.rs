//! `repro native [bench]`: execute every benchmark x strategy on the
//! native threaded backend and require checksums bit-identical to the
//! simulator — not once, but across repeated runs under randomized
//! thread-spawn jitter and yield injection (default 16 reps), so a
//! timing-dependent divergence has many chances to show itself.
//!
//! Any divergence is minimized by nest removal (drop compute nests one
//! at a time while the divergence persists, then try dropping the time
//! loop) and the shrunken program is dumped to `results/` as a
//! self-contained repro file. A sweep can ride the same oracle with
//! `--native` (see [`crate::sweep::SweepConfig::native_check`]).

use crate::harness::atomic_write_sync;
use crate::programs::suite;
use dct_core::{rung_sim_options, Compiler, Strategy};
use dct_ir::pretty::render_program;
use dct_ir::Program;
use std::path::Path;
use std::time::Instant;

/// Jitter seeds are derived from this base so a failing rep can name its
/// exact seed in the repro file.
const JITTER_BASE: u64 = 0x5EED_0000;

/// What one (benchmark, strategy, procs) native check concluded.
#[derive(Clone, Debug)]
pub enum NativeVerdict {
    /// Every rep bit-identical to the simulator.
    Identical,
    /// At least one rep diverged; `repro` is the dumped file, if the
    /// dump succeeded.
    Diverged { detail: String, repro: Option<String> },
    /// The native backend (or the simulator) failed outright.
    Failed(String),
}

/// One cell of the native differential table.
#[derive(Clone, Debug)]
pub struct NativeCell {
    pub bench: String,
    pub strategy: &'static str,
    pub procs: usize,
    /// Stress reps run in addition to the calm rep.
    pub reps: u64,
    pub sim_checksum_bits: u64,
    /// Wall time of the simulator run (host seconds).
    pub sim_wall_secs: f64,
    /// Wall time of the calm (unjittered) native run.
    pub native_wall_secs: f64,
    /// Dynamic barrier count (native == simulator, asserted).
    pub barriers: u64,
    pub verdict: NativeVerdict,
}

impl NativeCell {
    pub fn ok(&self) -> bool {
        matches!(self.verdict, NativeVerdict::Identical)
    }
}

/// Run one native execution (jittered when `jitter` is set) and compare
/// it against the simulator's bits. `Ok(wall)` on agreement.
fn one_rep(
    sp: &dct_spmd::SpmdProgram,
    sim_bits: u64,
    sim_barriers: u64,
    jitter: Option<u64>,
) -> Result<f64, String> {
    let nopts = dct_native::NativeOptions { jitter, ..dct_native::NativeOptions::default() };
    let t0 = Instant::now();
    let nr = dct_native::execute(sp, &nopts).map_err(|e| format!("native: {e}"))?;
    let wall = t0.elapsed().as_secs_f64();
    if nr.checksum.to_bits() != sim_bits {
        return Err(format!(
            "checksum diverges{}: native {:#018x} vs simulator {sim_bits:#018x}",
            match jitter {
                Some(s) => format!(" (jitter seed {s:#x})"),
                None => String::new(),
            },
            nr.checksum.to_bits()
        ));
    }
    if nr.barriers != sim_barriers {
        return Err(format!(
            "barrier count diverges: native {} vs simulator {sim_barriers}",
            nr.barriers
        ));
    }
    Ok(wall)
}

/// Does `prog` still diverge between simulator and native under this
/// configuration? Used by the minimizer: compile failures and simulator
/// failures mean the candidate is unusable (`None`), a native failure or
/// checksum mismatch is a divergence (`Some(detail)`).
fn diverges(prog: &Program, strategy: Strategy, procs: usize, reps: u64) -> Option<String> {
    let compiled = Compiler::new(strategy).compile(prog).ok()?;
    let params = prog.default_params();
    let opts = rung_sim_options(compiled.rung, procs, params);
    let r = dct_spmd::simulate(&compiled.program, &compiled.decomposition, &opts).ok()?;
    let sp = dct_spmd::lower(&compiled.program, &compiled.decomposition, &opts).ok()?;
    for rep in 0..=reps {
        let jitter = (rep > 0).then(|| JITTER_BASE + rep);
        if let Err(e) = one_rep(&sp, r.checksum.to_bits(), r.barriers, jitter) {
            return Some(e);
        }
    }
    None
}

/// Shrink a diverging program by structural removal: drop compute nests
/// one at a time (keeping a removal whenever the divergence persists),
/// then try dropping the time loop. Greedy to fixpoint; the result still
/// diverges and is usually a fraction of the original.
fn minimize(prog: &Program, strategy: Strategy, procs: usize, reps: u64) -> Program {
    let mut best = prog.clone();
    loop {
        let mut shrunk = false;
        let mut i = 0;
        while best.nests.len() > 1 && i < best.nests.len() {
            let mut cand = best.clone();
            cand.nests.remove(i);
            if diverges(&cand, strategy, procs, reps).is_some() {
                best = cand;
                shrunk = true;
            } else {
                i += 1;
            }
        }
        if best.time.is_some() {
            let mut cand = best.clone();
            cand.time = None;
            if diverges(&cand, strategy, procs, reps).is_some() {
                best = cand;
                shrunk = true;
            }
        }
        if !shrunk {
            return best;
        }
    }
}

/// Dump a minimized repro of a divergence to
/// `<out_dir>/native_repro_<bench>_<strategy>_p<procs>.txt`.
fn dump_repro(
    out_dir: &Path,
    bench: &str,
    strategy: Strategy,
    procs: usize,
    reps: u64,
    detail: &str,
    prog: &Program,
) -> Option<String> {
    let minimized = minimize(prog, strategy, procs, reps);
    let residual = diverges(&minimized, strategy, procs, reps)
        .unwrap_or_else(|| "divergence did not reproduce on the minimized program".to_string());
    let body = format!(
        "native/simulator divergence repro\n\
         benchmark: {bench}\n\
         strategy:  {}\n\
         procs:     {procs}\n\
         stress:    {reps} jittered reps, seeds {JITTER_BASE:#x}+1..={JITTER_BASE:#x}+{reps}\n\
         original:  {detail}\n\
         minimized: {residual}\n\
         ({} of {} compute nests kept, time loop {})\n\n{}",
        strategy.label(),
        minimized.nests.len(),
        prog.nests.len(),
        if minimized.time.is_some() { "kept" } else { "dropped" },
        render_program(&minimized)
    );
    let path = out_dir.join(format!("native_repro_{bench}_{}_p{procs}.txt", strategy.label()));
    match atomic_write_sync(&path, body.as_bytes()) {
        Ok(()) => Some(path.display().to_string()),
        Err(e) => {
            eprintln!("[native: cannot write repro {}: {e}]", path.display());
            None
        }
    }
}

/// Serialize / parse the cached sim leg: `"<checksum_bits> <barriers>"`
/// in hex, wrapped in the store's crc64 artifact envelope.
fn sim_leg_artifact(bits: u64, barriers: u64) -> String {
    format!("{bits:016x} {barriers:016x}")
}

fn parse_sim_leg(text: &str) -> Option<(u64, u64)> {
    let mut it = text.split_whitespace();
    let bits = u64::from_str_radix(it.next()?, 16).ok()?;
    let barriers = u64::from_str_radix(it.next()?, 16).ok()?;
    it.next().is_none().then_some((bits, barriers))
}

/// Cache key of one cell's sim leg. The tag carries strategy + procs so
/// every cell of the differential table gets its own entry.
fn sim_leg_key(
    bench: &str,
    prog: &Program,
    strategy: Strategy,
    procs: usize,
    scale: f64,
) -> Option<crate::cache::CacheKey> {
    let tag = format!("native-sim-{}-p{procs}", strategy.label());
    crate::cache::artifact_cache_key(&tag, bench, prog, procs, crate::sweep::scale_key(scale))
        .map_err(|e| eprintln!("[cache: native key derivation failed: {e}]"))
        .ok()
}

/// Check one (benchmark, strategy, procs) cell: simulator run, calm
/// native run, then `reps` jittered native runs, all bit-identical.
/// With a store, the simulator leg (checksum bits + barrier count) is
/// served from cache when warm — the native runs always execute, since
/// they are the thing under test.
fn check_cell(
    bench: &str,
    prog: &Program,
    strategy: Strategy,
    procs: usize,
    reps: u64,
    out_dir: &Path,
    scale: f64,
    store: Option<&crate::cache::ResultStore>,
) -> NativeCell {
    let mut cell = NativeCell {
        bench: bench.to_string(),
        strategy: strategy.label(),
        procs,
        reps,
        sim_checksum_bits: 0,
        sim_wall_secs: 0.0,
        native_wall_secs: 0.0,
        barriers: 0,
        verdict: NativeVerdict::Identical,
    };
    let compiled = match Compiler::new(strategy).compile(prog) {
        Ok(c) => c,
        Err(e) => {
            cell.verdict = NativeVerdict::Failed(format!("compile: {e}"));
            return cell;
        }
    };
    let opts = rung_sim_options(compiled.rung, procs, prog.default_params());
    let key = store.and_then(|_| sim_leg_key(bench, prog, strategy, procs, scale));
    let cached = match (store, &key) {
        (Some(s), Some(k)) => s.lookup_artifact(k).and_then(|t| parse_sim_leg(&t)),
        _ => None,
    };
    match cached {
        Some((bits, barriers)) => {
            // Warm sim leg: the oracle values come from the store (crc64
            // verified); only the native runs below actually execute.
            cell.sim_checksum_bits = bits;
            cell.barriers = barriers;
        }
        None => {
            let t0 = Instant::now();
            let r = match dct_spmd::simulate(&compiled.program, &compiled.decomposition, &opts) {
                Ok(r) => r,
                Err(e) => {
                    cell.verdict = NativeVerdict::Failed(format!("simulate: {e}"));
                    return cell;
                }
            };
            cell.sim_wall_secs = t0.elapsed().as_secs_f64();
            cell.sim_checksum_bits = r.checksum.to_bits();
            cell.barriers = r.barriers;
            if let (Some(s), Some(k)) = (store, &key) {
                let art = sim_leg_artifact(cell.sim_checksum_bits, cell.barriers);
                if let Err(e) = s.insert_artifact(k, &art, None) {
                    eprintln!("[cache: native insert failed: {e}]");
                }
            }
        }
    }
    let sp = match dct_spmd::lower(&compiled.program, &compiled.decomposition, &opts) {
        Ok(sp) => sp,
        Err(e) => {
            cell.verdict = NativeVerdict::Failed(format!("lower: {e}"));
            return cell;
        }
    };
    for rep in 0..=reps {
        let jitter = (rep > 0).then(|| JITTER_BASE + rep);
        match one_rep(&sp, cell.sim_checksum_bits, cell.barriers, jitter) {
            Ok(wall) => {
                if rep == 0 {
                    cell.native_wall_secs = wall;
                }
            }
            Err(detail) => {
                let repro = dump_repro(out_dir, bench, strategy, procs, reps, &detail, prog);
                cell.verdict = NativeVerdict::Diverged { detail, repro };
                return cell;
            }
        }
    }
    cell
}

/// The `repro native` entry point: every benchmark (or the named subset)
/// x every strategy x every processor count, each stress-checked with
/// `reps` jittered native runs against the simulator.
pub fn run_native_check(
    only: Option<&[String]>,
    scale: f64,
    procs_list: &[usize],
    reps: u64,
    out_dir: &Path,
) -> Vec<NativeCell> {
    run_native_check_cached(only, scale, procs_list, reps, out_dir, None)
}

/// [`run_native_check`] with an optional content-addressed store: warm
/// sim legs are served from cache, so a repeat `repro native --cache`
/// spends its wall time where it matters (the jittered native runs).
pub fn run_native_check_cached(
    only: Option<&[String]>,
    scale: f64,
    procs_list: &[usize],
    reps: u64,
    out_dir: &Path,
    store: Option<&crate::cache::ResultStore>,
) -> Vec<NativeCell> {
    let mut cells = Vec::new();
    for b in suite(scale) {
        if let Some(only) = only {
            if !only.iter().any(|n| n == b.name) {
                continue;
            }
        }
        for &strategy in &Strategy::ALL {
            for &procs in procs_list {
                cells.push(check_cell(
                    b.name, &b.program, strategy, procs, reps, out_dir, scale, store,
                ));
            }
        }
    }
    cells
}

/// Human-readable native differential table.
pub fn render_native_check(cells: &[NativeCell], reps: u64) -> String {
    let mut out = format!(
        "Native backend vs simulator ({reps} jittered reps per cell; wall is host seconds)\n"
    );
    out.push_str("program      strategy                     procs  sim-wall  native-wall  barriers  verdict\n");
    for c in cells {
        let verdict = match &c.verdict {
            NativeVerdict::Identical => "bit-identical".to_string(),
            NativeVerdict::Diverged { repro, .. } => match repro {
                Some(p) => format!("DIVERGED -> {p}"),
                None => "DIVERGED (repro dump failed)".to_string(),
            },
            NativeVerdict::Failed(e) => format!("FAILED: {e}"),
        };
        out.push_str(&format!(
            "{:<12} {:<28} {:>5} {:>9.3} {:>12.3} {:>9}  {}\n",
            c.bench, c.strategy, c.procs, c.sim_wall_secs, c.native_wall_secs, c.barriers, verdict
        ));
        if let NativeVerdict::Diverged { detail, .. } = &c.verdict {
            out.push_str(&format!("             ! {detail}\n"));
        }
    }
    let bad = cells.iter().filter(|c| !c.ok()).count();
    out.push_str(&if bad == 0 {
        format!("native: all {} cells bit-identical to the simulator\n", cells.len())
    } else {
        format!("native: {bad} of {} cells NOT identical\n", cells.len())
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_check_runs_clean_on_the_suite() {
        let dir = std::env::temp_dir().join(format!("dct-native-check-{}", std::process::id()));
        let cells = run_native_check(
            Some(&["stencil".to_string()]),
            0.05,
            &[3],
            2,
            &dir,
        );
        assert_eq!(cells.len(), 3, "one cell per strategy");
        for c in &cells {
            assert!(c.ok(), "{c:?}");
            assert!(c.barriers > 0, "{c:?}");
        }
        let text = render_native_check(&cells, 2);
        assert!(text.contains("bit-identical"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn minimizer_needs_a_real_divergence_to_shrink() {
        // On an agreeing program the minimizer must keep everything (no
        // candidate "diverges", so nothing is removed).
        let b = suite(0.05).into_iter().find(|b| b.name == "stencil").unwrap();
        let m = minimize(&b.program, Strategy::Full, 3, 1);
        assert_eq!(m.nests.len(), b.program.nests.len());
        assert_eq!(m.time.is_some(), b.program.time.is_some());
    }
}
