//! Simulator throughput profiling: wall time, simulated accesses per
//! second and fast-path hit ratios per figure benchmark, emitted as
//! `BENCH_sim_throughput.json` by `repro --profile`.

use crate::harness::{figure, FigureSpec, ALL_FIGURES};
use dct_core::{Compiler, Strategy};
use std::time::Instant;

/// Throughput measurement of one (figure, strategy) simulation: a
/// 1-thread / N-thread pair of the same cell, so the perf trajectory
/// captures intra-cell scaling, not just absolute rate.
#[derive(Clone, Debug)]
pub struct StrategyProfile {
    pub strategy: &'static str,
    /// Wall time of the 1-thread (exact sequential engine) run.
    pub wall_secs: f64,
    /// Simulated memory accesses performed by the run.
    pub accesses: u64,
    /// Simulated accesses per wall-clock second on the 1-thread engine —
    /// the simulator's headline throughput number.
    pub accesses_per_sec: f64,
    /// Sharded-engine threads of the parallel run of the pair.
    pub threads: usize,
    /// Wall time of the same cell on the sharded engine at `threads`.
    pub parallel_wall_secs: f64,
    /// Simulated accesses per second at `threads` (same access count —
    /// the engines are bit-identical — divided by the parallel wall).
    pub parallel_accesses_per_sec: f64,
    /// 1-thread wall over `threads`-wall: intra-cell scaling of this
    /// cell (1.0 = no win, e.g. regions too small or a 1-core host).
    pub intra_cell_speedup: f64,
    /// Sync-free regions the sharded engine ran in parallel vs
    /// sequentially during the N-thread run (coverage of the engine).
    pub par_regions: u64,
    pub seq_regions: u64,
    /// Fraction of innermost iterations executed through the strided
    /// segment engine (executor fast path).
    pub exec_fast_ratio: f64,
    /// Mean iterations per cursor segment (how long the strided engine
    /// runs between re-probes).
    pub avg_segment_len: f64,
    /// Fraction of accesses absorbed by the machine's one-entry
    /// last-line cache (subset of L1 hits).
    pub l1_fast_hit_ratio: f64,
    /// Fraction of innermost iterations executed through fused segment
    /// kernels (subset of `exec_fast_ratio`'s iterations).
    pub kernelized_ratio: f64,
    /// Kernel-shape histogram: iterations executed per recognized shape,
    /// labels from [`dct_spmd::kernel::SHAPE_NAMES`].
    pub kernel_shapes: [u64; 6],
    /// Wall time of the same simulation with the memory profiler
    /// attached (`SimOptions::profile`).
    pub profiled_wall_secs: f64,
    /// Profiler overhead: profiled wall time over plain wall time. The
    /// profiler is a pure observer, so simulated cycles are identical —
    /// only host time grows.
    pub profile_overhead: f64,
    /// Wall time of the same cell executed for real on the native
    /// threaded backend (one OS thread per simulated processor); its
    /// checksum is asserted bit-identical to the simulator's.
    pub native_wall_secs: f64,
}

/// All strategies of one figure at one processor count.
#[derive(Clone, Debug)]
pub struct FigureProfile {
    pub id: String,
    pub benchmark: String,
    pub size_label: String,
    pub procs: usize,
    pub strategies: Vec<StrategyProfile>,
}

/// Profile one figure: each compiler strategy simulated as a 1-thread /
/// `threads`-thread pair at `procs` simulated processors. The pair must
/// agree on cycles and checksum bits — the bit-identity contract of the
/// sharded engine, asserted on every profiling run.
pub fn profile_figure(spec: &FigureSpec, procs: usize, threads: usize) -> FigureProfile {
    let threads = threads.max(1);
    let params = spec.program.default_params();
    let strategies = Strategy::ALL
        .iter()
        .map(|&strategy| {
            let c = Compiler::new(strategy);
            let compiled = c.compile(&spec.program).unwrap();
            let t0 = Instant::now();
            let r = c.simulate_threads(&compiled, procs, &params, 1).unwrap();
            let wall = t0.elapsed().as_secs_f64();
            // The same cell on the sharded engine.
            let tp = Instant::now();
            let rn = c.simulate_threads(&compiled, procs, &params, threads).unwrap();
            let parallel_wall = tp.elapsed().as_secs_f64();
            assert_eq!(r.cycles, rn.cycles, "sharded engine must not perturb cycles");
            assert_eq!(
                r.checksum.to_bits(),
                rn.checksum.to_bits(),
                "sharded engine must not perturb the checksum"
            );
            // Same cell with the profiler attached: overhead is the wall
            // ratio (cycles are identical by construction; the golden
            // tests pin that, here we only measure host cost).
            let mut opts = dct_core::rung_sim_options(compiled.rung, procs, params.clone());
            opts.profile = true;
            let t1 = Instant::now();
            let rp = dct_spmd::simulate(&compiled.program, &compiled.decomposition, &opts).unwrap();
            let profiled_wall = t1.elapsed().as_secs_f64();
            assert_eq!(r.cycles, rp.cycles, "profiler must not perturb cycles");
            // The same cell executed for real: the native backend's wall
            // clock joins the profile, and its checksum must land on the
            // simulator's bits (the differential contract, re-asserted on
            // every profiling run).
            let nopts = dct_core::rung_sim_options(compiled.rung, procs, params.clone());
            let sp = dct_spmd::lower(&compiled.program, &compiled.decomposition, &nopts).unwrap();
            let tn = Instant::now();
            let nr = dct_native::execute(&sp, &dct_native::NativeOptions::default()).unwrap();
            let native_wall = tn.elapsed().as_secs_f64();
            assert_eq!(
                r.checksum.to_bits(),
                nr.checksum.to_bits(),
                "native backend must match the simulated checksum"
            );
            let accesses = r.stats.total().accesses;
            let iters = r.fast.fast_iters + r.fast.slow_iters;
            StrategyProfile {
                strategy: strategy.label(),
                wall_secs: wall,
                accesses,
                accesses_per_sec: if wall > 0.0 { accesses as f64 / wall } else { 0.0 },
                threads,
                parallel_wall_secs: parallel_wall,
                parallel_accesses_per_sec: if parallel_wall > 0.0 {
                    accesses as f64 / parallel_wall
                } else {
                    0.0
                },
                intra_cell_speedup: if parallel_wall > 0.0 { wall / parallel_wall } else { 0.0 },
                par_regions: rn.par_regions,
                seq_regions: rn.seq_regions,
                exec_fast_ratio: if iters > 0 { r.fast.fast_iters as f64 / iters as f64 } else { 0.0 },
                avg_segment_len: if r.fast.segments > 0 {
                    r.fast.fast_iters as f64 / r.fast.segments as f64
                } else {
                    0.0
                },
                l1_fast_hit_ratio: if accesses > 0 {
                    r.stats.total().l1_fast_hits as f64 / accesses as f64
                } else {
                    0.0
                },
                kernelized_ratio: r.fast.kernelized_ratio(),
                kernel_shapes: r.fast.kernel_shapes,
                profiled_wall_secs: profiled_wall,
                profile_overhead: if wall > 0.0 { profiled_wall / wall } else { 0.0 },
                native_wall_secs: native_wall,
            }
        })
        .collect();
    FigureProfile {
        id: spec.id.to_string(),
        benchmark: spec.benchmark.to_string(),
        size_label: spec.size_label.clone(),
        procs,
        strategies,
    }
}

/// Profile every figure (or the named subset) at `procs` and `scale`,
/// pairing each cell's 1-thread run with a `threads`-thread run.
pub fn profile_all(ids: &[String], procs: usize, scale: f64, threads: usize) -> Vec<FigureProfile> {
    let ids: Vec<&str> = if ids.is_empty() {
        ALL_FIGURES.to_vec()
    } else {
        ids.iter().map(|s| s.as_str()).collect()
    };
    ids.iter()
        .filter_map(|id| figure(id, scale))
        .map(|spec| profile_figure(&spec, procs, threads))
        .collect()
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Render the profiles as a JSON document (no external dependencies, so
/// the encoding is hand-rolled; all fields are numbers or plain strings).
pub fn render_json(profiles: &[FigureProfile], total_wall_secs: f64) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"total_wall_secs\": {total_wall_secs:.3},\n"));
    let total_acc: u64 =
        profiles.iter().flat_map(|p| &p.strategies).map(|s| s.accesses).sum();
    let total_time: f64 =
        profiles.iter().flat_map(|p| &p.strategies).map(|s| s.wall_secs).sum();
    out.push_str(&format!("  \"total_sim_accesses\": {total_acc},\n"));
    out.push_str(&format!(
        "  \"aggregate_accesses_per_sec\": {:.0},\n",
        if total_time > 0.0 { total_acc as f64 / total_time } else { 0.0 }
    ));
    out.push_str("  \"figures\": [\n");
    for (i, p) in profiles.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"id\": \"{}\",\n", json_escape(&p.id)));
        out.push_str(&format!("      \"benchmark\": \"{}\",\n", json_escape(&p.benchmark)));
        out.push_str(&format!("      \"size\": \"{}\",\n", json_escape(&p.size_label)));
        out.push_str(&format!("      \"procs\": {},\n", p.procs));
        out.push_str("      \"strategies\": [\n");
        for (j, s) in p.strategies.iter().enumerate() {
            out.push_str("        {\n");
            out.push_str(&format!("          \"strategy\": \"{}\",\n", json_escape(s.strategy)));
            out.push_str(&format!("          \"wall_secs\": {:.4},\n", s.wall_secs));
            out.push_str(&format!("          \"sim_accesses\": {},\n", s.accesses));
            out.push_str(&format!("          \"accesses_per_sec\": {:.0},\n", s.accesses_per_sec));
            out.push_str(&format!("          \"threads\": {},\n", s.threads));
            out.push_str(&format!(
                "          \"parallel_wall_secs\": {:.4},\n",
                s.parallel_wall_secs
            ));
            out.push_str(&format!(
                "          \"parallel_accesses_per_sec\": {:.0},\n",
                s.parallel_accesses_per_sec
            ));
            out.push_str(&format!(
                "          \"intra_cell_speedup\": {:.3},\n",
                s.intra_cell_speedup
            ));
            out.push_str(&format!("          \"par_regions\": {},\n", s.par_regions));
            out.push_str(&format!("          \"seq_regions\": {},\n", s.seq_regions));
            out.push_str(&format!("          \"exec_fast_ratio\": {:.4},\n", s.exec_fast_ratio));
            out.push_str(&format!("          \"avg_segment_len\": {:.1},\n", s.avg_segment_len));
            out.push_str(&format!("          \"l1_fast_hit_ratio\": {:.4},\n", s.l1_fast_hit_ratio));
            out.push_str(&format!("          \"kernelized_ratio\": {:.4},\n", s.kernelized_ratio));
            out.push_str("          \"kernel_shapes\": {");
            let mut first = true;
            for (name, &n) in dct_spmd::kernel::SHAPE_NAMES.iter().zip(&s.kernel_shapes) {
                if n > 0 {
                    if !first {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("\"{name}\": {n}"));
                    first = false;
                }
            }
            out.push_str("},\n");
            out.push_str(&format!("          \"profiled_wall_secs\": {:.4},\n", s.profiled_wall_secs));
            out.push_str(&format!("          \"profile_overhead\": {:.3},\n", s.profile_overhead));
            out.push_str(&format!("          \"native_wall_secs\": {:.4}\n", s.native_wall_secs));
            out.push_str(if j + 1 == p.strategies.len() { "        }\n" } else { "        },\n" });
        }
        out.push_str("      ]\n");
        out.push_str(if i + 1 == profiles.len() { "    }\n" } else { "    },\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Human-readable summary table of the same data.
pub fn render_text(profiles: &[FigureProfile]) -> String {
    let mut out = String::new();
    out.push_str("figure      strategy                     wall(s)   Macc/s  par-Macc/s  xT-speedup  fast-iter  kernel  seg-len  l1-fast  prof-ovh  native(s)  shapes\n");
    for p in profiles {
        for s in &p.strategies {
            let shapes: Vec<String> = dct_spmd::kernel::SHAPE_NAMES
                .iter()
                .zip(&s.kernel_shapes)
                .filter(|(_, &n)| n > 0)
                .map(|(name, _)| name.to_string())
                .collect();
            out.push_str(&format!(
                "{:<11} {:<28} {:>7.3} {:>8.1} {:>11.1} {:>8.2}x@{:<2} {:>8.1}% {:>6.1}% {:>8.1} {:>7.1}% {:>8.2}x {:>9.3}  {}\n",
                p.id,
                s.strategy,
                s.wall_secs,
                s.accesses_per_sec / 1e6,
                s.parallel_accesses_per_sec / 1e6,
                s.intra_cell_speedup,
                s.threads,
                s.exec_fast_ratio * 100.0,
                s.kernelized_ratio * 100.0,
                s.avg_segment_len,
                s.l1_fast_hit_ratio * 100.0,
                s.profile_overhead,
                s.native_wall_secs,
                if shapes.is_empty() { "-".to_string() } else { shapes.join("+") },
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_runs_and_renders() {
        let spec = figure("fig8", 0.1).unwrap();
        let profiles = vec![profile_figure(&spec, 4, 4)];
        assert_eq!(profiles[0].strategies.len(), 3);
        for s in &profiles[0].strategies {
            assert!(s.accesses > 0);
            assert!(s.exec_fast_ratio > 0.5, "fast path should dominate: {s:?}");
            assert!(s.kernelized_ratio > 0.5, "kernels should dominate: {s:?}");
            assert!(s.kernel_shapes.iter().sum::<u64>() > 0, "histogram empty: {s:?}");
        }
        for s in &profiles[0].strategies {
            assert!(s.profiled_wall_secs > 0.0);
            assert!(s.profile_overhead > 0.0);
            assert_eq!(s.threads, 4);
            assert!(s.parallel_wall_secs > 0.0);
            assert!(s.intra_cell_speedup > 0.0);
            assert!(s.native_wall_secs > 0.0);
        }
        let j = render_json(&profiles, 1.0);
        assert!(j.contains("\"fig8\""));
        assert!(j.contains("accesses_per_sec"));
        assert!(j.contains("parallel_accesses_per_sec"));
        assert!(j.contains("intra_cell_speedup"));
        assert!(j.contains("\"threads\": 4"));
        assert!(j.contains("profile_overhead"));
        assert!(j.contains("native_wall_secs"));
        assert!(j.contains("kernelized_ratio"));
        assert!(j.contains("kernel_shapes"));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(j.matches('{').count(), j.matches('}').count());
        assert_eq!(j.matches('[').count(), j.matches(']').count());
        let t = render_text(&profiles);
        assert!(t.contains("fig8"));
    }
}
