//! # dct-bench
//!
//! The paper's benchmark suite (Section 6) in the affine IR, plus the
//! harness that regenerates every figure and table of the evaluation.

#![allow(clippy::needless_range_loop, clippy::manual_memcpy)]

pub mod ablate;
pub mod cache;
pub mod chaos;
pub mod explain;
pub mod fuzz;
pub mod harness;
pub mod native_check;
pub mod profile;
pub mod programs;
pub mod sweep;

pub use ablate::{all_ablations, Ablation};
pub use cache::{
    artifact_cache_key, cell_cache_key, CacheKey, CacheStats, KeyInputs, ResultStore,
    CACHE_KEY_SCHEMA,
};
pub use chaos::{
    render_chaos, run_chaos, ChaosConfig, ChaosReport, Fault, FaultInjector, FaultPlan,
    FaultSite, RetryPolicy, RetryRung,
};
pub use explain::{explain, explain_cached, explain_json, explain_strategies, explain_threads, render_explain, ExplainResult, ExplainRun, StrategyExplain};
pub use harness::{atomic_write_sync, figure, run_figure, run_figure_parallel, table1, FigureResult, FigureSpec, StrategyCurve, Table1Row, ThreadBudget};
pub use native_check::{render_native_check, run_native_check, run_native_check_cached, NativeCell, NativeVerdict};
pub use sweep::{
    render_sweep, run_cell_supervised, run_sweep, run_sweep_supervised, scale_key, Cell,
    CellOutcome, CellRun, SweepConfig, SweepReport, KINDS,
};
