//! Differential pipeline fuzzing: random affine programs pushed through
//! the whole compiler (`frontend`-equivalent IR building → dependence
//! analysis → transformation → decomposition → layout → SPMD simulation)
//! under every strategy, processor count and folding, checking two
//! invariants:
//!
//! 1. **No panics.** Every failure mode must surface as a structured
//!    `DctError` (or a `CompileError` after the degradation ladder runs
//!    out) — the fuzz harness wraps each stage in `catch_unwind` and
//!    reports any escape as a finding.
//! 2. **Bit-exact results.** The simulated interpreter is deterministic,
//!    so the final contents of every array must be bit-identical across
//!    strategies, processor counts, foldings and the fast-path/general
//!    walk — the same oracle `spmd`'s layout-level differential tests use,
//!    extended to the whole pipeline.
//! 3. **Race-free schedules.** Determinism makes oracle 2 blind to
//!    synchronization bugs (sync only moves simulated time, never
//!    values), so every simulation also runs the happens-before race
//!    detector: an elided barrier or a missing pipeline handoff that the
//!    schedule actually needed surfaces as a reported race.
//! 4. **Conserved profiles.** Every simulation runs with the memory
//!    profiler attached, which must stay a pure observer (oracle 2 would
//!    catch value drift, the cycle counts feed oracle 2's reference) and
//!    must classify every miss exactly once:
//!    `cold + capacity + conflict + coherence == misses`, with the
//!    aggregate view agreeing with the machine's own counters.
//! 5. **Three-way execution agreement.** Every configuration also runs on
//!    the native multithreaded backend (`dct-native`): real threads over
//!    shared arenas, executing the same lowered schedule. Its per-config
//!    checksum must be bit-identical to the simulator's, its final array
//!    values must match the global reference, and its dynamic barrier
//!    count must equal the simulator's — reference walk vs strided fast
//!    path vs native execution, one oracle.
//!
//! Programs are generated so that every subscript is in bounds by
//! construction (loop ranges `1..=N-2`, subscripts `var ± 1` or small
//! constants) and division never appears (keeps the oracle away from
//! rounding-mode and NaN edge cases; constants are small integers).

use dct_core::{rung_sim_options, Compiler, Strategy};
use dct_decomp::Folding;
use dct_ir::{panic_message, Aff, Expr, Program, ProgramBuilder};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Deterministic 64-bit generator (splitmix64): reproducible cases from a
/// seed, no external crates.
pub struct Lcg(u64);

impl Lcg {
    pub fn new(seed: u64) -> Lcg {
        Lcg(seed.wrapping_add(0x9E3779B97F4A7C15))
    }

    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..n` (n > 0).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform in `lo..=hi`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo + 1) as u64) as i64
    }

    /// True with probability `pct`%.
    pub fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }
}

/// Shape of one generated array (rank 1 or 2, every extent = N).
struct GenArray {
    id: dct_ir::ArrayId,
    rank: usize,
}

/// An in-bounds affine subscript for one array dimension: `var(l) + c`
/// with `c ∈ {-1, 0, 1}` (loops run `1..=N-2`), or a small constant.
fn gen_subscript(rng: &mut Lcg, depth: usize) -> Aff {
    if depth > 0 && rng.chance(85) {
        let l = rng.below(depth as u64) as usize;
        match rng.below(3) {
            0 => Aff::var(l) - 1,
            1 => Aff::var(l) + 1,
            _ => Aff::var(l),
        }
    } else {
        // Constant subscript: 0..=3 is in bounds for every N >= 6.
        Aff::konst(rng.range(0, 3))
    }
}

/// A random RHS expression over the declared arrays: reads, constants,
/// loop indices, combined with + / - and the occasional *.
fn gen_expr(
    rng: &mut Lcg,
    nb: &dct_ir::NestBuilder,
    arrays: &[GenArray],
    depth: usize,
    fuel: usize,
) -> Expr {
    if fuel == 0 || rng.chance(40) {
        return match rng.below(3) {
            0 => {
                let a = &arrays[rng.below(arrays.len() as u64) as usize];
                let subs: Vec<Aff> = (0..a.rank).map(|_| gen_subscript(rng, depth)).collect();
                nb.read(a.id, &subs)
            }
            1 => Expr::Const(rng.range(-3, 4) as f64),
            _ if depth > 0 => Expr::Index(rng.below(depth as u64) as usize),
            _ => Expr::Const(1.0),
        };
    }
    let a = gen_expr(rng, nb, arrays, depth, fuel - 1);
    let b = gen_expr(rng, nb, arrays, depth, fuel - 1);
    if rng.chance(15) {
        a * b
    } else if rng.chance(50) {
        a + b
    } else {
        a - b
    }
}

/// Generate a random — but always valid — affine program: 1–2 arrays of
/// rank 1–2 (each with an initialization nest producing distinct
/// contents), 1–3 compute nests of depth 1–2 with in-bounds affine
/// accesses, and sometimes an outer time loop.
pub fn gen_program(rng: &mut Lcg) -> Program {
    let mut pb = ProgramBuilder::new("fuzz");
    let n = rng.range(6, 10);
    let np = pb.param("N", n);

    let narrays = rng.range(1, 2) as usize;
    let arrays: Vec<GenArray> = (0..narrays)
        .map(|x| {
            let rank = rng.range(1, 2) as usize;
            let dims: Vec<Aff> = (0..rank).map(|_| Aff::param(np)).collect();
            let id = pb.array(["A", "B"][x], &dims, if rng.chance(50) { 8 } else { 4 });
            GenArray { id, rank }
        })
        .collect();

    if rng.chance(25) {
        pb.time_loop(Aff::konst(rng.range(2, 3)));
    }

    // One init nest per array: full-extent loops, pure index arithmetic
    // (the idiom every suite benchmark uses).
    for (x, a) in arrays.iter().enumerate() {
        let mut nb = pb.nest_builder(&format!("init{x}"));
        let vars: Vec<usize> = (0..a.rank)
            .map(|_| nb.loop_var(Aff::konst(0), Aff::param(np) - 1))
            .collect();
        let mut v = Expr::Const(1.0 + x as f64);
        for (d, &l) in vars.iter().enumerate() {
            v = v + Expr::Index(l) * Expr::Const(0.25 * (d + 1) as f64);
        }
        let subs: Vec<Aff> = vars.iter().map(|&l| Aff::var(l)).collect();
        nb.assign(a.id, &subs, v);
        pb.init_nest(nb.build());
    }

    let nnests = rng.range(1, 3) as usize;
    for j in 0..nnests {
        let depth = rng.range(1, 2) as usize;
        let mut nb = pb.nest_builder(&format!("nest{j}"));
        for _ in 0..depth {
            nb.loop_var(Aff::konst(1), Aff::param(np) - 2);
        }
        nb.freq(1 + rng.below(3));
        let w = &arrays[rng.below(arrays.len() as u64) as usize];
        let subs: Vec<Aff> = (0..w.rank).map(|_| gen_subscript(rng, depth)).collect();
        let rhs = gen_expr(rng, &nb, &arrays, depth, 2);
        nb.assign(w.id, &subs, rhs);
        pb.nest(nb.build());
    }

    pb.try_build().expect("generator produced an invalid program")
}

/// Bit pattern of every array's final contents: the comparison key for
/// the differential oracle (exact, NaN-proof).
fn value_bits(vals: &[Vec<f64>]) -> Vec<Vec<u64>> {
    vals.iter().map(|a| a.iter().map(|v| v.to_bits()).collect()).collect()
}

/// Processor counts each configuration is simulated at.
pub const FUZZ_PROCS: &[usize] = &[1, 3, 8, 32];

/// Run one fuzz case. Returns the number of simulations performed, or a
/// description of the first divergence / escaped panic.
pub fn fuzz_case(seed: u64) -> Result<usize, String> {
    let mut rng = Lcg::new(seed);
    let prog = gen_program(&mut rng);
    let params = prog.default_params();
    let mut sims = 0usize;
    let mut reference: Option<Vec<Vec<u64>>> = None;

    let mut check = |label: String,
                     prog: &Program,
                     dec: &dct_decomp::Decomposition,
                     opts: &dct_spmd::SimOptions,
                     reference: &mut Option<Vec<Vec<u64>>>|
     -> Result<(), String> {
        let mut opts = opts.clone();
        opts.race_detect = true;
        opts.profile = true;
        let out =
            catch_unwind(AssertUnwindSafe(|| dct_spmd::simulate_with_values(prog, dec, &opts)));
        let (res, vals) = match out {
            Ok(Ok(r)) => r,
            Ok(Err(e)) => return Err(format!("seed {seed:#x}: {label}: {e}")),
            Err(p) => {
                return Err(format!(
                    "seed {seed:#x}: {label}: escaped panic: {}",
                    panic_message(p.as_ref())
                ))
            }
        };
        sims += 1;
        if let Some(rep) = &res.race {
            if !rep.is_race_free() {
                return Err(format!("seed {seed:#x}: {label}: schedule races: {rep}"));
            }
        }
        match &res.mem_profile {
            Some(mp) => {
                let t = mp.total();
                if t.classified() != t.misses() {
                    return Err(format!(
                        "seed {seed:#x}: {label}: classification leak: {} classified vs {} misses",
                        t.classified(),
                        t.misses()
                    ));
                }
                let s = res.stats.total();
                if t.accesses != s.accesses
                    || t.mem_cycles != s.mem_cycles
                    || t.invalidations != s.invalidations_received
                {
                    return Err(format!(
                        "seed {seed:#x}: {label}: profile disagrees with machine stats"
                    ));
                }
            }
            None => return Err(format!("seed {seed:#x}: {label}: profiler attached no profile")),
        }
        let bits = value_bits(&vals);
        match reference {
            None => *reference = Some(bits.clone()),
            Some(r) => {
                if *r != bits {
                    return Err(format!(
                        "seed {seed:#x}: {label}: array contents diverge from reference"
                    ));
                }
            }
        }
        // Third oracle leg: the native multithreaded backend runs the
        // identical lowered schedule on real threads. Race-freedom was
        // just certified above, so its results must be bit-identical.
        let nat = catch_unwind(AssertUnwindSafe(|| {
            let sp = dct_spmd::lower(prog, dec, &opts)?;
            dct_native::execute_with_values(&sp, &dct_native::NativeOptions::default())
        }));
        let (nr, nvals) = match nat {
            Ok(Ok(r)) => r,
            Ok(Err(e)) => return Err(format!("seed {seed:#x}: {label}: native: {e}")),
            Err(p) => {
                return Err(format!(
                    "seed {seed:#x}: {label}: native: escaped panic: {}",
                    panic_message(p.as_ref())
                ))
            }
        };
        sims += 1;
        if nr.checksum.to_bits() != res.checksum.to_bits() {
            return Err(format!(
                "seed {seed:#x}: {label}: native checksum {:?} != simulator {:?}",
                nr.checksum, res.checksum
            ));
        }
        if value_bits(&nvals) != bits {
            return Err(format!(
                "seed {seed:#x}: {label}: native array contents diverge from simulator"
            ));
        }
        if nr.barriers != res.barriers {
            return Err(format!(
                "seed {seed:#x}: {label}: native ran {} barriers, simulator {}",
                nr.barriers, res.barriers
            ));
        }
        Ok(())
    };

    for strategy in Strategy::ALL {
        let c = Compiler::new(strategy);
        let compiled = match catch_unwind(AssertUnwindSafe(|| c.compile(&prog))) {
            Ok(Ok(cc)) => cc,
            Ok(Err(e)) => return Err(format!("seed {seed:#x}: compile {}: {e}", strategy.label())),
            Err(p) => {
                return Err(format!(
                    "seed {seed:#x}: compile {}: escaped panic: {}",
                    strategy.label(),
                    panic_message(p.as_ref())
                ))
            }
        };
        for &procs in FUZZ_PROCS {
            let opts = rung_sim_options(compiled.rung, procs, params.clone());
            check(
                format!("{} at {procs} procs", strategy.label()),
                &compiled.program,
                &compiled.decomposition,
                &opts,
                &mut reference,
            )?;
            if procs == 3 {
                // The general walk must agree with the strided fast path.
                let mut slow = opts.clone();
                slow.fast_path = false;
                check(
                    format!("{} at {procs} procs (general walk)", strategy.label()),
                    &compiled.program,
                    &compiled.decomposition,
                    &slow,
                    &mut reference,
                )?;
            }
        }
        // Folding differential: the folding changes data placement, never
        // values. Exercised on the fully-optimized decomposition. That
        // invariant holds only for doall schedules: a doacross pipeline
        // preserves the sequential interleaving of its carried level only
        // under BLOCK folding (ownership order = iteration order), so
        // pipelined decompositions are skipped.
        if strategy == Strategy::Full
            && compiled.decomposition.grid_rank > 0
            && compiled.decomposition.comp.iter().all(|c| c.pipeline_level.is_none())
        {
            for f in [Folding::Cyclic, Folding::BlockCyclic { block: 2 }] {
                let mut dec = compiled.decomposition.clone();
                dec.foldings = vec![f; dec.grid_rank];
                let opts = rung_sim_options(compiled.rung, 3, params.clone());
                check(
                    format!("full with {f:?} folding at 3 procs"),
                    &compiled.program,
                    &dec,
                    &opts,
                    &mut reference,
                )?;
            }
        }
    }
    Ok(sims)
}

/// Summary of a fuzz run.
pub struct FuzzReport {
    pub cases: usize,
    pub sims: usize,
    pub failures: Vec<String>,
}

/// Run `cases` differential fuzz cases from `seed0`, collecting every
/// failure (does not stop at the first: one report per broken seed).
pub fn run_fuzz(seed0: u64, cases: usize) -> FuzzReport {
    let mut report = FuzzReport { cases, sims: 0, failures: Vec::new() };
    for k in 0..cases {
        match fuzz_case(seed0.wrapping_add(k as u64)) {
            Ok(s) => report.sims += s,
            Err(e) => report.failures.push(e),
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic() {
        let a = gen_program(&mut Lcg::new(7));
        let b = gen_program(&mut Lcg::new(7));
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn generated_programs_validate() {
        for seed in 0..50 {
            let prog = gen_program(&mut Lcg::new(seed));
            prog.try_validate().unwrap();
            assert!(!prog.nests.is_empty());
            assert!(!prog.init_nests.is_empty());
        }
    }

    #[test]
    fn single_case_runs_all_configs() {
        let sims = fuzz_case(1).unwrap();
        // 3 strategies x (4 proc counts + 1 general-walk rerun) plus any
        // folding variants — each config counted twice (simulator run +
        // native run).
        assert!(sims >= 30, "only {sims} simulations ran");
    }
}

