//! Frontend error-path tests (ISSUE 2 satellite): malformed FORTRAN must
//! produce a `FrontendError` with the right source line — never a panic.

use dct_frontend::parse_fortran;

fn expect_err(src: &str) -> dct_frontend::FrontendError {
    match parse_fortran(src) {
        Ok(_) => panic!("expected a frontend error for:\n{src}"),
        Err(e) => e,
    }
}

#[test]
fn unterminated_do_reports_its_line() {
    let src = "\
      PARAMETER (N = 8)
      REAL A(N)
      DO 10 I = 1, N
      A(I) = 0.0
";
    let e = expect_err(src);
    assert_eq!(e.lineno, 3, "{e}");
    assert!(e.message.to_lowercase().contains("do"), "{e}");
}

#[test]
fn non_affine_subscript_reports_its_line() {
    let src = "\
      PARAMETER (N = 8)
      REAL A(N,N)
      DO 10 J = 1, N
      DO 10 I = 1, N
      A(I*J,J) = 0.0
 10   CONTINUE
";
    let e = expect_err(src);
    assert_eq!(e.lineno, 5, "{e}");
    assert!(e.message.contains("non-affine"), "{e}");
}

#[test]
fn undeclared_array_reports_its_line() {
    let src = "\
      PARAMETER (N = 8)
      REAL A(N)
      DO 10 I = 1, N
      B(I) = 0.0
 10   CONTINUE
";
    let e = expect_err(src);
    assert_eq!(e.lineno, 4, "{e}");
    assert!(e.message.contains("undeclared") || e.message.contains("unknown"), "{e}");
}

#[test]
fn undeclared_array_read_reports_its_line() {
    let src = "\
      PARAMETER (N = 8)
      REAL A(N)
      DO 10 I = 1, N
      A(I) = C(I)
 10   CONTINUE
";
    let e = expect_err(src);
    assert_eq!(e.lineno, 4, "{e}");
    assert!(e.message.contains("undeclared") || e.message.contains("unknown"), "{e}");
}

#[test]
fn division_in_subscript_is_rejected() {
    let src = "\
      PARAMETER (N = 8)
      REAL A(N)
      DO 10 I = 1, N
      A(I/2) = 0.0
 10   CONTINUE
";
    let e = expect_err(src);
    assert_eq!(e.lineno, 4, "{e}");
    assert!(e.message.contains("division"), "{e}");
}

/// FrontendError converts into the pipeline-wide DctError with line intact.
#[test]
fn frontend_error_converts_to_dct_error() {
    let e = expect_err("      DO 10 I = 1, N\n");
    let d: dct_ir::DctError = e.into();
    assert_eq!(d.phase, dct_ir::Phase::Frontend);
    assert_eq!(d.line, Some(1));
}

/// Arbitrary garbage never panics the front end.
#[test]
fn garbage_never_panics() {
    for src in [
        "",
        "      END",
        "      DO 10",
        "      A(",
        "      REAL A(",
        "   10 CONTINUE",
        "      PARAMETER (",
        "\x00\x01\x02",
        "      DO 10 I = 1, N\n      DO 20 J = 1, N\n 10   CONTINUE\n",
    ] {
        let _ = parse_fortran(src);
    }
}
