//! End-to-end front-end tests: the paper's own figure code, as written,
//! must parse, lower, compile to the paper's decompositions, and compute
//! the same values as the hand-built IR versions.

use dct_core::{Compiler, Strategy};
use dct_frontend::parse_fortran;

/// Figure 5 verbatim (plus declarations): LU decomposition.
const FIGURE5: &str = "
      PROGRAM LU
      PARAMETER (N = 16)
      DOUBLE PRECISION A(N, N)
CDCT$ INIT
      DO 5 J = 1, N
      DO 5 I = 1, N
    5 A(I,J) = 1.0 / (I + J - 1.0) + 4.0
      DO 10 I1 = 1, N
      DO 10 I2 = I1+1, N
      A(I2,I1) = A(I2,I1) / A(I1,I1)
      DO 10 I3 = I1+1, N
      A(I2,I3) = A(I2,I3) - A(I2,I1)*A(I1,I3)
   10 CONTINUE
      END
";

/// Figure 7 shape: five-point stencil with a time loop.
const FIGURE7: &str = "
      PROGRAM STENCIL
      PARAMETER (N = 16, NSTEPS = 3)
      REAL A(N,N), B(N,N)
C Initialize B
CDCT$ INIT
      DO 5 J = 1, N
      DO 5 I = 1, N
    5 B(I,J) = I * 0.01 + J * 0.02
C Calculate Stencil
      DO 30 TIME = 1, NSTEPS
      DO 10 I1 = 2, N-1
      DO 10 I2 = 2, N-1
      A(I2,I1) = 0.2*(B(I2,I1)+B(I2-1,I1)+B(I2+1,I1)+B(I2,I1-1)+B(I2,I1+1))
   10 CONTINUE
      DO 20 I1 = 2, N-1
      DO 20 I2 = 2, N-1
      B(I2,I1) = A(I2,I1)
   20 CONTINUE
   30 CONTINUE
      END
";

/// Figure 9 shape: ADI column then row sweep.
const FIGURE9: &str = "
      PROGRAM ADI
      PARAMETER (N = 16, NSTEPS = 2)
      REAL X(N,N), A(N,N), B(N,N)
CDCT$ INIT
      DO 3 J = 1, N
      DO 3 I = 1, N
    3 X(I,J) = I * 0.003 + J * 0.001 + 1.0
CDCT$ INIT
      DO 4 J = 1, N
      DO 4 I = 1, N
    4 A(I,J) = 0.3
CDCT$ INIT
      DO 5 J = 1, N
      DO 5 I = 1, N
    5 B(I,J) = 2.0 + I * 0.001
      DO 30 TIME = 1, NSTEPS
C Column Sweep
      DO 10 I1 = 1, N
      DO 10 I2 = 2, N
      X(I2,I1) = X(I2,I1) - X(I2-1,I1)*A(I2,I1)/B(I2-1,I1)
      B(I2,I1) = B(I2,I1) - A(I2,I1)*A(I2,I1)/B(I2-1,I1)
   10 CONTINUE
C Row Sweep
      DO 20 I1 = 2, N
      DO 20 I2 = 1, N
      X(I2,I1) = X(I2,I1) - X(I2,I1-1)*A(I2,I1)/B(I2,I1-1)
      B(I2,I1) = B(I2,I1) - A(I2,I1)*A(I2,I1)/B(I2,I1-1)
   20 CONTINUE
   30 CONTINUE
      END
";

#[test]
fn figure5_lu_parses_and_decomposes() {
    let prog = parse_fortran(FIGURE5).expect("figure 5 must parse");
    assert_eq!(prog.name, "lu");
    assert!(prog.time.is_some(), "pivot loop must become the time loop");
    assert_eq!(prog.nests.len(), 2, "div + update after loop distribution");
    assert_eq!(prog.init_nests.len(), 1);

    let c = Compiler::new(Strategy::Full).compile(&prog).unwrap();
    assert_eq!(c.decomposition.hpf_of(&c.program, 0), "A(*, CYCLIC)");
}

#[test]
fn figure5_lu_computes_a_correct_factorization() {
    let prog = parse_fortran(FIGURE5).unwrap();
    let c = Compiler::new(Strategy::Full);
    let compiled = c.compile(&prog).unwrap();
    let opts = c.sim_options(4, prog.default_params());
    let (_, vals) = dct_core::spmd::simulate_with_values(
        &compiled.program,
        &compiled.decomposition,
        &opts,
    ).unwrap();
    // Reconstruct L*U and compare with the initialized matrix
    // orig(i,j) = 1/(i+j+1) + 4 (0-based i,j).
    let n = 16usize;
    let lu = &vals[0];
    let get = |i: usize, j: usize| lu[i + n * j];
    for i in 0..n {
        for j in 0..n {
            let mut s = 0.0;
            for k in 0..=i.min(j) {
                let l = if k == i { 1.0 } else { get(i, k) };
                s += if k == i { get(k, j) } else { l * get(k, j) };
            }
            let expect = 1.0 / ((i + j) as f64 + 1.0) + 4.0;
            assert!(
                (s - expect).abs() < 1e-9,
                "LU mismatch at ({i},{j}): {s} vs {expect}"
            );
        }
    }
}

#[test]
fn figure7_stencil_parses_and_decomposes() {
    let prog = parse_fortran(FIGURE7).expect("figure 7 must parse");
    assert!(prog.time.is_some());
    assert_eq!(prog.nests.len(), 2);
    assert_eq!(prog.time_step_count(&prog.default_params()), 3);
    let c = Compiler::new(Strategy::Full).compile(&prog).unwrap();
    assert_eq!(c.decomposition.grid_rank, 2, "stencil gets 2-D blocks");
    assert_eq!(c.decomposition.hpf_of(&c.program, 0), "A(BLOCK, BLOCK)");
}

#[test]
fn figure7_matches_handbuilt_values() {
    // The FORTRAN version and an equivalent builder version must compute
    // identical values.
    let prog_f = parse_fortran(FIGURE7).unwrap();

    use dct_core::ir::{Aff, Expr, ProgramBuilder};
    let mut pb = ProgramBuilder::new("stencil");
    let n = pb.param("N", 16);
    let nsteps = pb.param("NSTEPS", 3);
    let a = pb.array("A", &[Aff::param(n), Aff::param(n)], 4);
    let b = pb.array("B", &[Aff::param(n), Aff::param(n)], 4);
    let _t = pb.time_loop(Aff::param(nsteps));
    let mut nb = pb.nest_builder("init");
    let j = nb.loop_var(Aff::konst(1), Aff::param(n));
    let i = nb.loop_var(Aff::konst(1), Aff::param(n));
    let v = Expr::Index(i) * Expr::Const(0.01) + Expr::Index(j) * Expr::Const(0.02);
    nb.assign(b, &[Aff::var(i) - 1, Aff::var(j) - 1], v);
    pb.init_nest(nb.build());
    let mut nb = pb.nest_builder("stencil");
    let i1 = nb.loop_var(Aff::konst(2), Aff::param(n) - 1);
    let i2 = nb.loop_var(Aff::konst(2), Aff::param(n) - 1);
    let rhs = Expr::Const(0.2)
        * (nb.read(b, &[Aff::var(i2) - 1, Aff::var(i1) - 1])
            + nb.read(b, &[Aff::var(i2) - 2, Aff::var(i1) - 1])
            + nb.read(b, &[Aff::var(i2), Aff::var(i1) - 1])
            + nb.read(b, &[Aff::var(i2) - 1, Aff::var(i1) - 2])
            + nb.read(b, &[Aff::var(i2) - 1, Aff::var(i1)]));
    nb.assign(a, &[Aff::var(i2) - 1, Aff::var(i1) - 1], rhs);
    pb.nest(nb.build());
    let mut nb = pb.nest_builder("copy");
    let i1 = nb.loop_var(Aff::konst(2), Aff::param(n) - 1);
    let i2 = nb.loop_var(Aff::konst(2), Aff::param(n) - 1);
    let rhs = nb.read(a, &[Aff::var(i2) - 1, Aff::var(i1) - 1]);
    nb.assign(b, &[Aff::var(i2) - 1, Aff::var(i1) - 1], rhs);
    pb.nest(nb.build());
    let prog_b = pb.build();

    let run = |prog: &dct_core::ir::Program| {
        let c = Compiler::new(Strategy::Full);
        let compiled = c.compile(prog).unwrap();
        let opts = c.sim_options(4, prog.default_params());
        dct_core::spmd::simulate_with_values(&compiled.program, &compiled.decomposition, &opts).unwrap().1
    };
    let vf = run(&prog_f);
    let vb = run(&prog_b);
    assert_eq!(vf.len(), vb.len());
    for (x, (p, q)) in vf.iter().zip(&vb).enumerate() {
        assert_eq!(p.len(), q.len());
        for (k, (u, w)) in p.iter().zip(q).enumerate() {
            assert!(
                (u - w).abs() < 1e-12,
                "array {x} elem {k}: fortran {u} vs builder {w}"
            );
        }
    }
}

#[test]
fn figure9_adi_pipeline_found() {
    let prog = parse_fortran(FIGURE9).expect("figure 9 must parse");
    assert_eq!(prog.nests.len(), 2);
    let c = Compiler::new(Strategy::Full).compile(&prog).unwrap();
    assert_eq!(c.decomposition.hpf_of(&c.program, 0), "X(*, BLOCK)");
    // One of the sweeps runs as a pipeline.
    assert!(c.decomposition.comp.iter().any(|cd| cd.pipeline_level.is_some()));
}

#[test]
fn useful_errors() {
    // Unknown array.
    let e = parse_fortran("      DO 1 I = 1, 4\n    1 Z(I) = 0.0\n").unwrap_err();
    assert!(e.message.contains("undeclared"), "{e}");
    // Non-affine subscript.
    let e = parse_fortran(
        "      REAL A(4)\n      DO 1 I = 1, 4\n    1 A(I*I) = 0.0\n",
    )
    .unwrap_err();
    assert!(e.message.contains("non-affine"), "{e}");
    // Rank mismatch.
    let e = parse_fortran(
        "      REAL A(4,4)\n      DO 1 I = 1, 4\n    1 A(I) = 0.0\n",
    )
    .unwrap_err();
    assert!(e.message.contains("rank"), "{e}");
}
