//! Lowering: FORTRAN AST → the affine IR.
//!
//! Normalizations performed here, mirroring SUIF's preprocessing:
//!
//! * **1-based to 0-based subscripts**: FORTRAN `A(I,J)` becomes the
//!   0-based index `(I-1, J-1)` against extents taken from the
//!   declaration.
//! * **Outer sequential loop extraction**: a single top-level DO that is
//!   imperfectly nested (Figure 5's pivot loop) or whose variable never
//!   appears in a subscript (Figure 7's `time` loop) becomes the program's
//!   [`dct_ir::TimeLoop`]; references to its variable turn into the time
//!   pseudo-parameter.
//! * **Loop distribution**: imperfect nests are split into perfectly
//!   nested ones (legal for the paper's kernels; the classic SUIF
//!   preprocessing does the same).
//! * Nests before the time loop, or marked `CDCT$ INIT`, become
//!   initialization nests.

use crate::lex::{err, Directive, FrontendError};
use crate::parse::{Ast, AssignItem, DoItem, ExprAst, Item};
use dct_ir::{Aff, Expr, NestBuilder, Program, ProgramBuilder};
use std::collections::HashMap;

/// Lower a parsed AST into a validated [`Program`].
pub fn lower(ast: &Ast) -> Result<Program, FrontendError> {
    let mut pb = ProgramBuilder::new(&ast.name);
    let mut ctx = Ctx::default();
    for (name, v) in &ast.params {
        let idx = pb.param(name, *v);
        ctx.params.insert(name.clone(), idx);
    }

    // Array declarations.
    for (name, dims, bytes) in &ast.decls {
        let extents = dims
            .iter()
            .map(|d| ctx.aff(d, 0, &HashMap::new()))
            .collect::<Result<Vec<_>, _>>()?;
        let id = pb.array(name, &extents, *bytes);
        ctx.arrays.insert(name.clone(), (id, extents.len()));
    }

    // Partition top-level items.
    let mut top: Vec<&DoItem> = Vec::new();
    for item in &ast.items {
        match item {
            Item::Do(d) => top.push(d),
            Item::Assign(a) => {
                return err(a.lineno, "top-level assignment outside any loop is not supported")
            }
        }
    }
    let is_init = |d: &DoItem| d.directives.contains(&Directive::Init);
    let compute: Vec<&DoItem> = top.iter().copied().filter(|d| !is_init(d)).collect();

    // Time-loop decision.
    let time_do: Option<&DoItem> = match compute.as_slice() {
        [single] if !is_perfect(single) || !var_in_subscripts(single, &single.var) => Some(single),
        _ => None,
    };

    if let Some(td) = time_do {
        let lo = ctx.aff(&td.lo, 0, &HashMap::new())?;
        let hi = ctx.aff(&td.hi, 0, &HashMap::new())?;
        let count = hi - lo.clone() + 1;
        let tidx = pb.time_loop(count);
        ctx.time = Some(TimeVar { name: td.var.clone(), param: tidx, lo });
    }

    // Init nests: CDCT$ INIT items plus (when a time loop exists) the
    // compute-position nests before it — but with a single top-level
    // time DO there are none of the latter.
    for d in top.iter().filter(|d| is_init(d)) {
        for nest in ctx.distribute_and_build(&pb, d)? {
            pb.init_nest(nest);
        }
    }
    match time_do {
        Some(td) => {
            for item in &td.body {
                match item {
                    Item::Do(d) => {
                        for nest in ctx.distribute_and_build(&pb, d)? {
                            pb.nest(nest);
                        }
                    }
                    Item::Assign(a) => {
                        // A statement directly under the time loop: a
                        // zero-depth nest.
                        let nest = ctx.build_nest(&pb, &[], &[a], 1, a.lineno)?;
                        pb.nest(nest);
                    }
                }
            }
        }
        None => {
            for d in &compute {
                for nest in ctx.distribute_and_build(&pb, d)? {
                    pb.nest(nest);
                }
            }
        }
    }

    // Validate without panicking: lowering bugs or unsupported shapes in
    // untrusted source must come back as a FrontendError.
    pb.try_build()
        .map_err(|e| FrontendError { lineno: e.line.unwrap_or(0), message: e.message })
}

/// The time variable binding: `var = lo + t`.
struct TimeVar {
    name: String,
    param: usize,
    lo: Aff,
}

#[derive(Default)]
struct Ctx {
    params: HashMap<String, usize>,
    arrays: HashMap<String, (dct_ir::ArrayId, usize)>,
    time: Option<TimeVar>,
}

impl Ctx {
    /// Loop distribution: split a DO tree into perfect nests and build
    /// them.
    fn distribute_and_build(
        &self,
        pb: &ProgramBuilder,
        d: &DoItem,
    ) -> Result<Vec<dct_ir::LoopNest>, FrontendError> {
        let mut out = Vec::new();
        let mut chain: Vec<&DoItem> = Vec::new();
        self.walk(pb, d, &mut chain, &mut out)?;
        Ok(out)
    }

    fn walk<'a>(
        &self,
        pb: &ProgramBuilder,
        d: &'a DoItem,
        chain: &mut Vec<&'a DoItem>,
        out: &mut Vec<dct_ir::LoopNest>,
    ) -> Result<(), FrontendError> {
        chain.push(d);
        // Gather maximal runs of assignments and recurse into child DOs.
        let mut run: Vec<&AssignItem> = Vec::new();
        let freq = chain
            .iter()
            .flat_map(|x| &x.directives)
            .filter_map(|dir| match dir {
                Directive::Freq(f) => Some(*f),
                _ => None,
            })
            .next_back()
            .unwrap_or(1);
        for item in &d.body {
            match item {
                Item::Assign(a) => run.push(a),
                Item::Do(child) => {
                    if !run.is_empty() {
                        out.push(self.build_nest(pb, chain, &run, freq, d.lineno)?);
                        run.clear();
                    }
                    self.walk(pb, child, chain, out)?;
                }
            }
        }
        if !run.is_empty() {
            out.push(self.build_nest(pb, chain, &run, freq, d.lineno)?);
        }
        chain.pop();
        Ok(())
    }

    /// Build one perfect nest from a loop chain and its statements.
    fn build_nest(
        &self,
        pb: &ProgramBuilder,
        chain: &[&DoItem],
        stmts: &[&AssignItem],
        freq: u64,
        lineno: usize,
    ) -> Result<dct_ir::LoopNest, FrontendError> {
        let mut scope: HashMap<String, usize> = HashMap::new();
        let mut nb: NestBuilder = pb.nest_builder(&format!("L{lineno}"));
        nb.line(lineno);
        for (level, d) in chain.iter().enumerate() {
            if self.params.contains_key(&d.var)
                || self.time.as_ref().is_some_and(|t| t.name == d.var)
            {
                return err(d.lineno, format!("loop variable {} shadows a parameter", d.var));
            }
            let lo = self.aff(&d.lo, d.lineno, &scope)?;
            let hi = self.aff(&d.hi, d.lineno, &scope)?;
            let l = nb.loop_var(lo, hi);
            debug_assert_eq!(l, level);
            scope.insert(d.var.clone(), level);
        }
        nb.freq(freq);
        for a in stmts {
            let (id, rank) = self
                .arrays
                .get(&a.name)
                .copied()
                .ok_or_else(|| FrontendError {
                    lineno: a.lineno,
                    message: format!("assignment to undeclared array {}", a.name),
                })?;
            if a.subs.len() != rank {
                return err(a.lineno, format!("{} has rank {rank}, {} subscripts given", a.name, a.subs.len()));
            }
            let subs = a
                .subs
                .iter()
                .map(|s| Ok(self.aff(s, a.lineno, &scope)? - 1)) // 1-based -> 0-based
                .collect::<Result<Vec<_>, FrontendError>>()?;
            let rhs = self.value(&a.rhs, a.lineno, &scope, &nb)?;
            nb.assign(id, &subs, rhs);
        }
        Ok(nb.build())
    }

    /// Convert an expression used as a subscript or bound into an affine
    /// form over loop variables, parameters and the time pseudo-parameter.
    fn aff(
        &self,
        e: &ExprAst,
        lineno: usize,
        scope: &HashMap<String, usize>,
    ) -> Result<Aff, FrontendError> {
        match e {
            ExprAst::Int(v) => Ok(Aff::konst(*v)),
            ExprAst::Num(_) => err(lineno, "real literal in integer context"),
            ExprAst::Var(w) => {
                if let Some(&l) = scope.get(w) {
                    Ok(Aff::var(l))
                } else if let Some(t) = &self.time {
                    if t.name == *w {
                        Ok(Aff::param(t.param) + t.lo.clone())
                    } else if let Some(&p) = self.params.get(w) {
                        Ok(Aff::param(p))
                    } else {
                        err(lineno, format!("unknown name '{w}' in affine context"))
                    }
                } else if let Some(&p) = self.params.get(w) {
                    Ok(Aff::param(p))
                } else {
                    err(lineno, format!("unknown name '{w}' in affine context"))
                }
            }
            ExprAst::Add(a, b) => Ok(self.aff(a, lineno, scope)? + self.aff(b, lineno, scope)?),
            ExprAst::Sub(a, b) => Ok(self.aff(a, lineno, scope)? - self.aff(b, lineno, scope)?),
            ExprAst::Neg(a) => Ok(self.aff(a, lineno, scope)? * -1),
            ExprAst::Mul(a, b) => {
                if let Some(k) = const_of(a) {
                    Ok(self.aff(b, lineno, scope)? * k)
                } else if let Some(k) = const_of(b) {
                    Ok(self.aff(a, lineno, scope)? * k)
                } else {
                    err(lineno, "non-affine subscript: product of two variables")
                }
            }
            ExprAst::Div(_, _) => err(lineno, "non-affine subscript: division"),
            ExprAst::Ref(w, _) => err(lineno, format!("array reference {w}(...) in affine context")),
        }
    }

    /// Convert a right-hand-side expression to the IR's value language.
    fn value(
        &self,
        e: &ExprAst,
        lineno: usize,
        scope: &HashMap<String, usize>,
        nb: &NestBuilder,
    ) -> Result<Expr, FrontendError> {
        Ok(match e {
            ExprAst::Num(v) => Expr::Const(*v),
            ExprAst::Int(v) => Expr::Const(*v as f64),
            ExprAst::Var(w) => {
                if let Some(&l) = scope.get(w) {
                    Expr::Index(l)
                } else if self.time.as_ref().is_some_and(|t| t.name == *w) {
                    return err(lineno, "time variable used as a value is not supported");
                } else {
                    return err(lineno, format!("unknown value '{w}'"));
                }
            }
            ExprAst::Ref(w, subs) => {
                let (id, rank) = self.arrays.get(w).copied().ok_or_else(|| FrontendError {
                    lineno,
                    message: format!("read of undeclared array {w}"),
                })?;
                if subs.len() != rank {
                    return err(lineno, format!("{w} has rank {rank}, {} subscripts given", subs.len()));
                }
                let affs = subs
                    .iter()
                    .map(|s| Ok(self.aff(s, lineno, scope)? - 1))
                    .collect::<Result<Vec<_>, FrontendError>>()?;
                nb.read(id, &affs)
            }
            ExprAst::Add(a, b) => {
                self.value(a, lineno, scope, nb)? + self.value(b, lineno, scope, nb)?
            }
            ExprAst::Sub(a, b) => {
                self.value(a, lineno, scope, nb)? - self.value(b, lineno, scope, nb)?
            }
            ExprAst::Mul(a, b) => {
                self.value(a, lineno, scope, nb)? * self.value(b, lineno, scope, nb)?
            }
            ExprAst::Div(a, b) => {
                self.value(a, lineno, scope, nb)? / self.value(b, lineno, scope, nb)?
            }
            ExprAst::Neg(a) => Expr::Const(-1.0) * self.value(a, lineno, scope, nb)?,
        })
    }
}

/// Fold an integer-constant expression.
fn const_of(e: &ExprAst) -> Option<i64> {
    match e {
        ExprAst::Int(v) => Some(*v),
        ExprAst::Neg(a) => const_of(a).map(|v| -v),
        ExprAst::Add(a, b) => Some(const_of(a)? + const_of(b)?),
        ExprAst::Sub(a, b) => Some(const_of(a)? - const_of(b)?),
        ExprAst::Mul(a, b) => Some(const_of(a)? * const_of(b)?),
        _ => None,
    }
}

/// A DO tree is perfect if its body is a single DO chain ending in
/// assignments only.
fn is_perfect(d: &DoItem) -> bool {
    let dos: Vec<&DoItem> = d
        .body
        .iter()
        .filter_map(|i| match i {
            Item::Do(x) => Some(x),
            _ => None,
        })
        .collect();
    let assigns = d.body.len() - dos.len();
    match (dos.len(), assigns) {
        (0, _) => true,
        (1, 0) => is_perfect(dos[0]),
        _ => false,
    }
}

/// Does `var` appear in any subscript within the tree?
fn var_in_subscripts(d: &DoItem, var: &str) -> bool {
    fn in_expr(e: &ExprAst, var: &str, in_sub: bool) -> bool {
        match e {
            ExprAst::Var(w) => in_sub && w == var,
            ExprAst::Ref(_, subs) => subs.iter().any(|s| in_expr(s, var, true)),
            ExprAst::Add(a, b) | ExprAst::Sub(a, b) | ExprAst::Mul(a, b) | ExprAst::Div(a, b) => {
                in_expr(a, var, in_sub) || in_expr(b, var, in_sub)
            }
            ExprAst::Neg(a) => in_expr(a, var, in_sub),
            _ => false,
        }
    }
    fn walk(d: &DoItem, var: &str) -> bool {
        // Bounds of inner loops referencing the var also count as "used"
        // (LU's I2 = I1+1 would otherwise misclassify when subscripts use
        // only derived values).
        d.body.iter().any(|i| match i {
            Item::Assign(a) => {
                a.subs.iter().any(|s| in_expr(s, var, true)) || in_expr(&a.rhs, var, false)
            }
            Item::Do(x) => {
                in_expr(&x.lo, var, true) || in_expr(&x.hi, var, true) || walk(x, var)
            }
        })
    }
    walk(d, var)
}
