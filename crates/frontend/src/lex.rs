//! Line-oriented lexer for the restricted FORTRAN-77 subset.
//!
//! Free-form enough to accept the paper's figures as written: optional
//! numeric statement labels, `C`/`*`/`!` comment lines, case-insensitive
//! keywords, and `CDCT$` directive comments (INIT / FREQ) that the
//! lowering phase consumes.

/// One token.
#[derive(Clone, PartialEq, Debug)]
pub enum Tok {
    Ident(String),
    Int(i64),
    Real(f64),
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
    Comma,
    Equals,
    Colon,
}

/// One logical statement line.
#[derive(Clone, Debug)]
pub struct Line {
    /// 1-based source line number (for error messages).
    pub lineno: usize,
    /// Numeric statement label, if any.
    pub label: Option<i64>,
    pub toks: Vec<Tok>,
}

/// A `CDCT$` directive attached to the next statement.
#[derive(Clone, PartialEq, Debug)]
pub enum Directive {
    Init,
    Freq(u64),
}

/// Lexer output: statements plus the directives preceding each (indexed by
/// statement position).
#[derive(Debug, Default)]
pub struct Lexed {
    pub lines: Vec<Line>,
    /// Directives that appeared immediately before `lines[k]`.
    pub directives: Vec<Vec<Directive>>,
}

/// Lexing/parsing error with a line number.
#[derive(Clone, Debug, PartialEq)]
pub struct FrontendError {
    pub lineno: usize,
    pub message: String,
}

impl std::fmt::Display for FrontendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.lineno, self.message)
    }
}
impl std::error::Error for FrontendError {}

pub(crate) fn err<T>(lineno: usize, message: impl Into<String>) -> Result<T, FrontendError> {
    Err(FrontendError { lineno, message: message.into() })
}

/// Merge classic fixed-form continuation lines (columns 1–5 blank, a
/// non-blank, non-`0` marker in column 6) into their parent statement.
fn logical_lines(src: &str) -> Vec<(usize, String)> {
    let mut out: Vec<(usize, String)> = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let chars: Vec<char> = raw.chars().collect();
        let is_cont = chars.len() >= 6
            && chars[..5].iter().all(|c| c.is_whitespace())
            && !chars[5].is_whitespace()
            && chars[5] != '0'
            && !out.is_empty();
        if is_cont {
            let cont: String = chars[6..].iter().collect();
            out.last_mut().unwrap().1.push(' ');
            out.last_mut().unwrap().1.push_str(&cont);
        } else {
            out.push((idx + 1, raw.to_string()));
        }
    }
    out
}

/// Tokenize a whole source file.
pub fn lex(src: &str) -> Result<Lexed, FrontendError> {
    let mut out = Lexed::default();
    let mut pending: Vec<Directive> = Vec::new();
    for (lineno, raw) in logical_lines(src) {
        let trimmed = raw.trim_end();
        if trimmed.trim().is_empty() {
            continue;
        }
        let upper = trimmed.trim_start().to_uppercase();
        // Directive comments.
        if let Some(rest) = upper.strip_prefix("CDCT$") {
            let rest = rest.trim();
            if rest == "INIT" {
                pending.push(Directive::Init);
            } else if let Some(n) = rest.strip_prefix("FREQ") {
                let v = n
                    .trim()
                    .parse::<u64>()
                    .map_err(|_| FrontendError { lineno, message: "bad FREQ value".into() })?;
                pending.push(Directive::Freq(v));
            } else {
                return err(lineno, format!("unknown directive '{rest}'"));
            }
            continue;
        }
        // Comment lines: 'C'/'c'/'*' in column 1, or '!' anywhere at start.
        let first = trimmed.chars().next().unwrap();
        if matches!(first, 'C' | 'c' | '*')
            && trimmed
                .chars()
                .nth(1)
                .is_none_or(|c| c.is_whitespace() || !c.is_alphanumeric())
        {
            continue;
        }
        if trimmed.trim_start().starts_with('!') {
            continue;
        }

        // Optional numeric label.
        let mut body = trimmed.trim_start();
        let mut label = None;
        let digits: String = body.chars().take_while(|c| c.is_ascii_digit()).collect();
        if !digits.is_empty()
            && body[digits.len()..]
                .chars()
                .next()
                .is_some_and(|c| c.is_whitespace())
        {
            label = Some(digits.parse::<i64>().unwrap());
            body = body[digits.len()..].trim_start();
        }

        let toks = lex_line(body, lineno)?;
        if toks.is_empty() {
            continue;
        }
        out.directives.push(std::mem::take(&mut pending));
        out.lines.push(Line { lineno, label, toks });
    }
    if !pending.is_empty() {
        return err(src.lines().count(), "dangling CDCT$ directive at end of file");
    }
    Ok(out)
}

fn lex_line(body: &str, lineno: usize) -> Result<Vec<Tok>, FrontendError> {
    let mut toks = Vec::new();
    let chars: Vec<char> = body.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        match c {
            ' ' | '\t' => {
                i += 1;
            }
            '+' => {
                toks.push(Tok::Plus);
                i += 1;
            }
            '-' => {
                toks.push(Tok::Minus);
                i += 1;
            }
            '*' => {
                toks.push(Tok::Star);
                i += 1;
            }
            '/' => {
                toks.push(Tok::Slash);
                i += 1;
            }
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            ',' => {
                toks.push(Tok::Comma);
                i += 1;
            }
            '=' => {
                toks.push(Tok::Equals);
                i += 1;
            }
            ':' => {
                toks.push(Tok::Colon);
                i += 1;
            }
            c if c.is_ascii_digit() || c == '.' => {
                let start = i;
                let mut seen_dot = false;
                while i < chars.len()
                    && (chars[i].is_ascii_digit()
                        || (chars[i] == '.' && !seen_dot && {
                            seen_dot = true;
                            true
                        }))
                {
                    i += 1;
                }
                // Exponent part (e.g. 1.0E-3).
                if i < chars.len() && matches!(chars[i], 'e' | 'E') {
                    let mut j = i + 1;
                    if j < chars.len() && matches!(chars[j], '+' | '-') {
                        j += 1;
                    }
                    if j < chars.len() && chars[j].is_ascii_digit() {
                        seen_dot = true;
                        i = j;
                        while i < chars.len() && chars[i].is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text: String = chars[start..i].iter().collect();
                if seen_dot {
                    match text.parse::<f64>() {
                        Ok(v) => toks.push(Tok::Real(v)),
                        Err(_) => return err(lineno, format!("bad real literal '{text}'")),
                    }
                } else {
                    match text.parse::<i64>() {
                        Ok(v) => toks.push(Tok::Int(v)),
                        Err(_) => return err(lineno, format!("bad integer literal '{text}'")),
                    }
                }
            }
            c if c.is_ascii_alphabetic() => {
                let start = i;
                while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                let word: String = chars[start..i].iter().collect::<String>().to_uppercase();
                toks.push(Tok::Ident(word));
            }
            other => return err(lineno, format!("unexpected character '{other}'")),
        }
    }
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_tokens() {
        let l = lex("      A(I,J) = 0.2*(B(I,J)+1)\n").unwrap();
        assert_eq!(l.lines.len(), 1);
        let t = &l.lines[0].toks;
        assert_eq!(t[0], Tok::Ident("A".into()));
        assert!(t.contains(&Tok::Real(0.2)));
        assert!(t.contains(&Tok::Int(1)));
    }

    #[test]
    fn labels_and_comments() {
        let src = "
C a comment
* another
! and another
   10 CONTINUE
";
        let l = lex(src).unwrap();
        assert_eq!(l.lines.len(), 1);
        assert_eq!(l.lines[0].label, Some(10));
        assert_eq!(l.lines[0].toks[0], Tok::Ident("CONTINUE".into()));
    }

    #[test]
    fn directives_attach_to_next_line() {
        let src = "
CDCT$ INIT
CDCT$ FREQ 10
      DO 5 I = 1, N
";
        let l = lex(src).unwrap();
        assert_eq!(l.directives[0], vec![Directive::Init, Directive::Freq(10)]);
    }

    #[test]
    fn scientific_notation() {
        let l = lex("      X = 1.5E-3 + 2E2\n").unwrap();
        assert!(l.lines[0].toks.contains(&Tok::Real(0.0015)));
        assert!(l.lines[0].toks.contains(&Tok::Real(200.0)));
    }

    #[test]
    fn bad_directive_rejected() {
        assert!(lex("CDCT$ BOGUS\n      X = 1\n").is_err());
    }

    #[test]
    fn case_insensitive_idents() {
        let l = lex("      do 10 i = 1, n\n").unwrap();
        assert_eq!(l.lines[0].toks[0], Tok::Ident("DO".into()));
        assert_eq!(l.lines[0].toks[2], Tok::Ident("I".into()));
    }
}
