//! Parser: token lines → a small AST of declarations and DO trees.
//!
//! Supports the FORTRAN-77 constructs the paper's figures use:
//! `PROGRAM` / `PARAMETER` / `REAL` / `DOUBLE PRECISION` declarations,
//! label-terminated and `END DO`-terminated DO loops (including several
//! loops sharing one label, as in Figure 5), assignments, `CONTINUE`,
//! `END`.

use crate::lex::{err, Directive, FrontendError, Lexed, Line, Tok};

/// Arithmetic expression AST (used for both subscripts and right-hand
/// sides; subscripts are later checked to be affine).
#[derive(Clone, PartialEq, Debug)]
pub enum ExprAst {
    Num(f64),
    Int(i64),
    Var(String),
    Ref(String, Vec<ExprAst>),
    Add(Box<ExprAst>, Box<ExprAst>),
    Sub(Box<ExprAst>, Box<ExprAst>),
    Mul(Box<ExprAst>, Box<ExprAst>),
    Div(Box<ExprAst>, Box<ExprAst>),
    Neg(Box<ExprAst>),
}

/// One statement/loop item.
#[derive(Clone, Debug)]
pub enum Item {
    Do(DoItem),
    Assign(AssignItem),
}

#[derive(Clone, Debug)]
pub struct DoItem {
    pub var: String,
    pub lo: ExprAst,
    pub hi: ExprAst,
    pub body: Vec<Item>,
    pub directives: Vec<Directive>,
    pub lineno: usize,
}

#[derive(Clone, Debug)]
pub struct AssignItem {
    pub name: String,
    pub subs: Vec<ExprAst>,
    pub rhs: ExprAst,
    pub lineno: usize,
}

/// A whole parsed source file.
#[derive(Clone, Debug, Default)]
pub struct Ast {
    pub name: String,
    /// `PARAMETER` constants in declaration order.
    pub params: Vec<(String, i64)>,
    /// Array declarations: (name, extents, element bytes).
    pub decls: Vec<(String, Vec<ExprAst>, u32)>,
    pub items: Vec<Item>,
}

/// Parse a lexed file.
pub fn parse(lexed: &Lexed) -> Result<Ast, FrontendError> {
    let mut ast = Ast { name: "program".into(), ..Default::default() };
    // Stack of open DO loops: (item, terminating label or None for END DO).
    let mut stack: Vec<(DoItem, Option<i64>)> = Vec::new();

    let push_item = |stack: &mut Vec<(DoItem, Option<i64>)>, ast: &mut Ast, item: Item| {
        match stack.last_mut() {
            Some((d, _)) => d.body.push(item),
            None => ast.items.push(item),
        }
    };
    // Close every open DO waiting for `label`.
    fn close_label(
        stack: &mut Vec<(DoItem, Option<i64>)>,
        ast: &mut Ast,
        label: i64,
    ) {
        while stack
            .last()
            .is_some_and(|(_, l)| *l == Some(label))
        {
            let (done, _) = stack.pop().unwrap();
            match stack.last_mut() {
                Some((d, _)) => d.body.push(Item::Do(done)),
                None => ast.items.push(Item::Do(done)),
            }
        }
    }

    for (k, line) in lexed.lines.iter().enumerate() {
        let dirs = &lexed.directives[k];
        let t = &line.toks;
        let lineno = line.lineno;
        let kw = match &t[0] {
            Tok::Ident(w) => w.as_str(),
            _ => return err(lineno, "statement must start with a keyword or name"),
        };
        match kw {
            "PROGRAM" => {
                if let Some(Tok::Ident(n)) = t.get(1) {
                    ast.name = n.to_lowercase();
                }
            }
            "PARAMETER" => parse_parameter(&mut ast, line)?,
            "REAL" => parse_decl(&mut ast, line, 4, 1)?,
            "DOUBLE" => {
                // DOUBLE PRECISION A(...)
                match t.get(1) {
                    Some(Tok::Ident(p)) if p == "PRECISION" => parse_decl(&mut ast, line, 8, 2)?,
                    _ => return err(lineno, "expected DOUBLE PRECISION"),
                }
            }
            "INTEGER" => { /* scalar integer declarations are ignored */ }
            "DO" => {
                let (d, term) = parse_do(line, dirs.clone())?;
                stack.push((d, term));
            }
            "CONTINUE" => {
                match line.label {
                    Some(l) => close_label(&mut stack, &mut ast, l),
                    None => { /* bare CONTINUE is a no-op */ }
                }
            }
            "ENDDO" => match stack.pop() {
                Some((done, None)) => push_item(&mut stack, &mut ast, Item::Do(done)),
                Some((_, Some(_))) => return err(lineno, "END DO closing a labeled DO"),
                None => return err(lineno, "END DO without open loop"),
            },
            "END" => {
                match t.get(1) {
                    Some(Tok::Ident(w)) if w == "DO" => match stack.pop() {
                        Some((done, None)) => push_item(&mut stack, &mut ast, Item::Do(done)),
                        _ => return err(lineno, "END DO without matching DO"),
                    },
                    _ => { /* END of program */ }
                }
            }
            _ => {
                // Assignment: NAME(subs) = expr.
                let item = parse_assign(line)?;
                push_item(&mut stack, &mut ast, Item::Assign(item));
                if let Some(l) = line.label {
                    close_label(&mut stack, &mut ast, l);
                }
            }
        }
    }
    if let Some((d, _)) = stack.last() {
        return err(d.lineno, format!("DO {} never closed", d.var));
    }
    Ok(ast)
}

fn parse_parameter(ast: &mut Ast, line: &Line) -> Result<(), FrontendError> {
    // PARAMETER ( N = 512 , M = 4 )
    let mut p = Cursor::new(&line.toks[1..], line.lineno);
    p.expect(&Tok::LParen)?;
    loop {
        let name = p.ident()?;
        p.expect(&Tok::Equals)?;
        let neg = p.eat(&Tok::Minus);
        let v = p.int()?;
        ast.params.push((name, if neg { -v } else { v }));
        if !p.eat(&Tok::Comma) {
            break;
        }
    }
    p.expect(&Tok::RParen)?;
    Ok(())
}

fn parse_decl(ast: &mut Ast, line: &Line, bytes: u32, skip: usize) -> Result<(), FrontendError> {
    let mut p = Cursor::new(&line.toks[skip..], line.lineno);
    loop {
        let name = p.ident()?;
        p.expect(&Tok::LParen)?;
        let mut dims = Vec::new();
        loop {
            dims.push(p.expr()?);
            if !p.eat(&Tok::Comma) {
                break;
            }
        }
        p.expect(&Tok::RParen)?;
        ast.decls.push((name, dims, bytes));
        if !p.eat(&Tok::Comma) {
            break;
        }
    }
    Ok(())
}

fn parse_do(line: &Line, directives: Vec<Directive>) -> Result<(DoItem, Option<i64>), FrontendError> {
    // DO [label] VAR = lo, hi
    let mut p = Cursor::new(&line.toks[1..], line.lineno);
    let term = p.opt_int();
    let var = p.ident()?;
    p.expect(&Tok::Equals)?;
    let lo = p.expr()?;
    p.expect(&Tok::Comma)?;
    let hi = p.expr()?;
    p.end()?;
    Ok((DoItem { var, lo, hi, body: Vec::new(), directives, lineno: line.lineno }, term))
}

fn parse_assign(line: &Line) -> Result<AssignItem, FrontendError> {
    let mut p = Cursor::new(&line.toks, line.lineno);
    let name = p.ident()?;
    p.expect(&Tok::LParen)?;
    let mut subs = Vec::new();
    loop {
        subs.push(p.expr()?);
        if !p.eat(&Tok::Comma) {
            break;
        }
    }
    p.expect(&Tok::RParen)?;
    p.expect(&Tok::Equals)?;
    let rhs = p.expr()?;
    p.end()?;
    Ok(AssignItem { name, subs, rhs, lineno: line.lineno })
}

/// Token cursor with a recursive-descent expression parser.
struct Cursor<'a> {
    toks: &'a [Tok],
    pos: usize,
    lineno: usize,
}

impl<'a> Cursor<'a> {
    fn new(toks: &'a [Tok], lineno: usize) -> Cursor<'a> {
        Cursor { toks, pos: 0, lineno }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), FrontendError> {
        if self.eat(t) {
            Ok(())
        } else {
            err(self.lineno, format!("expected {t:?}, found {:?}", self.peek()))
        }
    }

    fn end(&mut self) -> Result<(), FrontendError> {
        if self.pos == self.toks.len() {
            Ok(())
        } else {
            err(self.lineno, format!("trailing tokens: {:?}", &self.toks[self.pos..]))
        }
    }

    fn ident(&mut self) -> Result<String, FrontendError> {
        match self.peek() {
            Some(Tok::Ident(w)) => {
                let w = w.clone();
                self.pos += 1;
                Ok(w)
            }
            other => err(self.lineno, format!("expected identifier, found {other:?}")),
        }
    }

    fn int(&mut self) -> Result<i64, FrontendError> {
        match self.peek() {
            Some(Tok::Int(v)) => {
                let v = *v;
                self.pos += 1;
                Ok(v)
            }
            other => err(self.lineno, format!("expected integer, found {other:?}")),
        }
    }

    fn opt_int(&mut self) -> Option<i64> {
        match self.peek() {
            Some(Tok::Int(v)) => {
                let v = *v;
                self.pos += 1;
                Some(v)
            }
            _ => None,
        }
    }

    /// expr := term (('+'|'-') term)*
    fn expr(&mut self) -> Result<ExprAst, FrontendError> {
        let mut e = self.term()?;
        loop {
            if self.eat(&Tok::Plus) {
                e = ExprAst::Add(Box::new(e), Box::new(self.term()?));
            } else if self.eat(&Tok::Minus) {
                e = ExprAst::Sub(Box::new(e), Box::new(self.term()?));
            } else {
                return Ok(e);
            }
        }
    }

    /// term := factor (('*'|'/') factor)*
    fn term(&mut self) -> Result<ExprAst, FrontendError> {
        let mut e = self.factor()?;
        loop {
            if self.eat(&Tok::Star) {
                e = ExprAst::Mul(Box::new(e), Box::new(self.factor()?));
            } else if self.eat(&Tok::Slash) {
                e = ExprAst::Div(Box::new(e), Box::new(self.factor()?));
            } else {
                return Ok(e);
            }
        }
    }

    /// factor := num | ident [ '(' expr, ... ')' ] | '(' expr ')' | '-' factor
    fn factor(&mut self) -> Result<ExprAst, FrontendError> {
        if self.eat(&Tok::Minus) {
            return Ok(ExprAst::Neg(Box::new(self.factor()?)));
        }
        match self.peek().cloned() {
            Some(Tok::Int(v)) => {
                self.pos += 1;
                Ok(ExprAst::Int(v))
            }
            Some(Tok::Real(v)) => {
                self.pos += 1;
                Ok(ExprAst::Num(v))
            }
            Some(Tok::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Some(Tok::Ident(w)) => {
                self.pos += 1;
                if self.eat(&Tok::LParen) {
                    let mut subs = Vec::new();
                    loop {
                        subs.push(self.expr()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(&Tok::RParen)?;
                    Ok(ExprAst::Ref(w, subs))
                } else {
                    Ok(ExprAst::Var(w))
                }
            }
            other => err(self.lineno, format!("expected expression, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn parse_src(src: &str) -> Ast {
        parse(&lex(src).unwrap()).unwrap()
    }

    #[test]
    fn shared_label_nests() {
        // Figure 5's shape: three DOs sharing one label.
        let src = "
      PARAMETER (N = 8)
      DOUBLE PRECISION A(N, N)
      DO 10 I1 = 1, N
      DO 10 I2 = I1+1, N
      A(I2,I1) = A(I2,I1) / A(I1,I1)
      DO 10 I3 = I1+1, N
      A(I2,I3) = A(I2,I3) - A(I2,I1)*A(I1,I3)
   10 CONTINUE
      END
";
        let ast = parse_src(src);
        assert_eq!(ast.params, vec![("N".to_string(), 8)]);
        assert_eq!(ast.decls.len(), 1);
        assert_eq!(ast.decls[0].2, 8);
        assert_eq!(ast.items.len(), 1);
        let Item::Do(outer) = &ast.items[0] else { panic!("expected DO") };
        assert_eq!(outer.var, "I1");
        // Body: DO I2 containing [assign, DO I3 [assign]].
        let Item::Do(i2) = &outer.body[0] else { panic!() };
        assert_eq!(i2.var, "I2");
        assert_eq!(i2.body.len(), 2);
        assert!(matches!(i2.body[0], Item::Assign(_)));
        assert!(matches!(i2.body[1], Item::Do(_)));
    }

    #[test]
    fn enddo_form() {
        let src = "
      REAL A(4,4)
      DO I = 1, 4
        DO J = 1, 4
          A(I,J) = 0.0
        END DO
      ENDDO
";
        let ast = parse_src(src);
        assert_eq!(ast.items.len(), 1);
    }

    #[test]
    fn expression_precedence() {
        let src = "
      REAL X(4)
      DO 1 I = 1, 4
      X(I) = 1.0 + 2.0 * 3.0 - X(I) / 2.0
    1 CONTINUE
";
        let ast = parse_src(src);
        let Item::Do(d) = &ast.items[0] else { panic!() };
        let Item::Assign(a) = &d.body[0] else { panic!() };
        // (1 + (2*3)) - (X(I)/2)
        assert!(matches!(a.rhs, ExprAst::Sub(_, _)));
    }

    #[test]
    fn labeled_assignment_closes_loop() {
        let src = "
      REAL A(4,4)
      DO 20 J = 1, 4
      DO 20 I = 1, 4
   20 A(I,J) = 1.0
      DO 30 I = 1, 4
   30 A(I,I) = 2.0
";
        let ast = parse_src(src);
        assert_eq!(ast.items.len(), 2);
    }

    #[test]
    fn unclosed_do_rejected() {
        let src = "
      REAL A(4)
      DO 10 I = 1, 4
      A(I) = 1.0
";
        assert!(parse(&lex(src).unwrap()).is_err());
    }

    #[test]
    fn unary_minus_and_parens() {
        let src = "
      REAL X(8)
      DO 1 I = 1, 4
    1 X(2*I - 1) = -(1.0 + 0.5)
";
        let ast = parse_src(src);
        let Item::Do(d) = &ast.items[0] else { panic!() };
        let Item::Assign(a) = &d.body[0] else { panic!() };
        assert!(matches!(a.rhs, ExprAst::Neg(_)));
        assert!(matches!(a.subs[0], ExprAst::Sub(_, _)));
    }
}
