//! # dct-frontend
//!
//! A restricted FORTRAN-77 front end: the paper's compiler "takes
//! sequential C or FORTRAN programs as input", and this crate makes that
//! literal for the FORTRAN subset the paper's figures are written in —
//! PARAMETER/REAL/DOUBLE PRECISION declarations, (possibly imperfectly
//! nested, label-terminated) DO loops and affine-subscript assignments.
//! Lowering normalizes to the affine IR: 0-based subscripts, loop
//! distribution of imperfect nests, and extraction of the outer sequential
//! (time/pivot) loop.

pub mod lex;
pub mod lower;
pub mod parse;

pub use lex::{Directive, FrontendError};
pub use parse::{Ast, ExprAst, Item};

impl From<FrontendError> for dct_ir::DctError {
    fn from(e: FrontendError) -> dct_ir::DctError {
        dct_ir::DctError::new(dct_ir::Phase::Frontend, e.message).with_line(e.lineno)
    }
}

/// Parse and lower FORTRAN source into an affine [`dct_ir::Program`].
pub fn parse_fortran(src: &str) -> Result<dct_ir::Program, FrontendError> {
    let lexed = lex::lex(src)?;
    let ast = parse::parse(&lexed)?;
    lower::lower(&ast)
}
