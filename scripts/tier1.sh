#!/usr/bin/env bash
# Tier-1 verification: release build, full test suite, and a scaled-down
# `repro table1` smoke run that must stay inside a wall-time budget and
# produce a well-formed table. Run from the repository root:
#
#   scripts/tier1.sh [smoke-budget-seconds]
#
# The smoke budget (default 120 s) is generous: at --scale 0.25 the sweep
# takes ~2 s on one core with the strided engine; blowing the budget means
# a serious performance regression, not noise.
set -euo pipefail
cd "$(dirname "$0")/.."

BUDGET="${1:-120}"

echo "== tier1: cargo build --release --workspace"
# --workspace so the repro binary itself is rebuilt (a bare root build
# only rebuilds the dct-bench *library* the root package depends on).
cargo build --release --workspace

echo "== tier1: cargo test -q"
cargo test -q

echo "== tier1: differential fuzz smoke (256 cases, three-way oracle)"
# Each case runs the reference walk, the strided fast path, AND the
# native threaded backend; all three must agree bit for bit.
cargo test -q -p dct-bench --test fuzz_smoke

echo "== tier1: panic-site ratchet"
# New panic!/unwrap() sites must not appear in the compiler crates above
# the pinned baseline (scripts/panic_baseline.txt). Lowering a count is
# fine — update the baseline downward when you remove panic sites.
while read -r crate pinned; do
    [ -z "$crate" ] && continue
    # `|| true`: grep exits 1 on zero matches, which pipefail would
    # otherwise turn into a silent script death for panic-free crates.
    count=$(grep -rhoE 'panic!|\.unwrap\(\)' "crates/$crate/src" --include='*.rs' | wc -l || true)
    if [ "$count" -gt "$pinned" ]; then
        echo "tier1 FAIL: crates/$crate/src has $count panic!/unwrap() sites (baseline $pinned)" >&2
        echo "  use DctError/Result instead, or justify and bump scripts/panic_baseline.txt" >&2
        exit 1
    fi
    echo "  $crate: $count/$pinned"
done < scripts/panic_baseline.txt

echo "== tier1: memory profiler is panic-free"
# The profiler observes every memory access of a profiled run; like the
# race detector it must never be able to take the process down.
prof_panics=$(grep -rhoE 'panic!|\.unwrap\(\)' crates/profile/src --include='*.rs' | wc -l || true)
if [ "${prof_panics:-0}" -ne 0 ]; then
    echo "tier1 FAIL: crates/profile/src has $prof_panics panic!/unwrap() sites (must be 0)" >&2
    exit 1
fi
echo "  profile/src: 0 panic sites"

echo "== tier1: native backend is panic-free"
# The native backend runs real worker threads over shared arenas inside
# every cross-checked cell; worker death, peer death, and cancellation
# must all surface as structured errors, never a panic or a deadlock.
native_panics=$(grep -rhoE 'panic!|\.unwrap\(\)' crates/native/src --include='*.rs' | wc -l || true)
if [ "${native_panics:-0}" -ne 0 ]; then
    echo "tier1 FAIL: crates/native/src has $native_panics panic!/unwrap() sites (must be 0)" >&2
    exit 1
fi
echo "  native/src: 0 panic sites"

echo "== tier1: race detector is panic-free"
# The happens-before detector runs inside the simulator on every
# race-checked cell; it must never be able to take the process down.
race_panics=$(grep -choE 'panic!|\.unwrap\(\)' crates/spmd/src/race.rs || true)
if [ "${race_panics:-0}" -ne 0 ]; then
    echo "tier1 FAIL: crates/spmd/src/race.rs has $race_panics panic!/unwrap() sites (must be 0)" >&2
    exit 1
fi
echo "  spmd/src/race.rs: 0 panic sites"

echo "== tier1: parallel engine is panic-free"
# The sharded engine runs conflict analysis and worker merges inside
# every multi-threaded cell; a panic there would take down a sweep that
# the sequential path would have completed.
par_panics=$(grep -choE 'panic!|\.unwrap\(\)' crates/spmd/src/par.rs || true)
if [ "${par_panics:-0}" -ne 0 ]; then
    echo "tier1 FAIL: crates/spmd/src/par.rs has $par_panics panic!/unwrap() sites (must be 0)" >&2
    exit 1
fi
echo "  spmd/src/par.rs: 0 panic sites"

echo "== tier1: segment kernels are panic-free"
# The fused kernels run raw-pointer sweeps over arena slices inside the
# innermost loop of every simulation; any failure must be a fallback to
# the interpreter, never a panic (or worse).
kern_panics=$(grep -choE 'panic!|\.unwrap\(\)' crates/spmd/src/kernel.rs || true)
if [ "${kern_panics:-0}" -ne 0 ]; then
    echo "tier1 FAIL: crates/spmd/src/kernel.rs has $kern_panics panic!/unwrap() sites (must be 0)" >&2
    exit 1
fi
echo "  spmd/src/kernel.rs: 0 panic sites"

echo "== tier1: chaos supervisor is panic-free"
# The fault-injection supervisor catches panics and heals the sweep; it
# must never be able to take down what it supervises. (The one injected
# panicking site lives in the sweep worker, under the bench ratchet.)
chaos_panics=$(grep -choE 'panic!|\.unwrap\(\)' crates/bench/src/chaos.rs || true)
if [ "${chaos_panics:-0}" -ne 0 ]; then
    echo "tier1 FAIL: crates/bench/src/chaos.rs has $chaos_panics panic!/unwrap() sites (must be 0)" >&2
    exit 1
fi
echo "  bench/src/chaos.rs: 0 panic sites"

echo "== tier1: serve service is panic-free"
# The cache + job-queue HTTP service runs unattended; a hostile request,
# a poisoned lock, or a corrupt store entry must surface as an error
# response or a quarantine, never take the process down.
serve_panics=$(grep -rhoE 'panic!|\.unwrap\(\)' crates/serve/src --include='*.rs' | wc -l || true)
if [ "${serve_panics:-0}" -ne 0 ]; then
    echo "tier1 FAIL: crates/serve/src has $serve_panics panic!/unwrap() sites (must be 0)" >&2
    exit 1
fi
echo "  serve/src: 0 panic sites"

echo "== tier1: sharded engine determinism (--threads 1 vs --threads 4)"
# The parallel engine must be bit-identical to the sequential walk with
# every observer attached: plain figure cells, the race detector, and
# the memory profiler (explain). Budget banners go to stderr, so stdout
# diffs are clean.
seq_out=$(./target/release/repro fig8 --scale 0.15 --procs 8 --threads 1 2>/dev/null)
par_out=$(./target/release/repro fig8 --scale 0.15 --procs 8 --threads 4 2>/dev/null)
if [ "$seq_out" != "$par_out" ]; then
    echo "tier1 FAIL: fig8 output differs between --threads 1 and --threads 4" >&2
    diff <(echo "$seq_out") <(echo "$par_out") >&2 || true
    exit 1
fi
seq_rc=$(./target/release/repro --race-check --scale 0.15 --procs 8 --threads 1 2>/dev/null)
par_rc=$(./target/release/repro --race-check --scale 0.15 --procs 8 --threads 4 2>/dev/null)
if [ "$seq_rc" != "$par_rc" ]; then
    echo "tier1 FAIL: race-check output differs between --threads 1 and --threads 4" >&2
    diff <(echo "$seq_rc") <(echo "$par_rc") >&2 || true
    exit 1
fi
seq_ex=$(./target/release/repro explain stencil --scale 0.15 --procs 32 --threads 1 2>/dev/null)
par_ex=$(./target/release/repro explain stencil --scale 0.15 --procs 32 --threads 4 2>/dev/null)
if [ "$seq_ex" != "$par_ex" ]; then
    echo "tier1 FAIL: explain output differs between --threads 1 and --threads 4" >&2
    diff <(echo "$seq_ex") <(echo "$par_ex") >&2 || true
    exit 1
fi
echo "  fig8 + race-check + explain: bit-identical at 1 and 4 threads"

echo "== tier1: segment kernels bit-identity (fig8 kernels off vs on)"
# The fused-kernel engine must not perturb a single reported number; the
# interpreter run is the oracle.
kern_on=$(./target/release/repro fig8 --scale 0.15 --procs 8 --threads 1 2>/dev/null)
kern_off=$(./target/release/repro fig8 --scale 0.15 --procs 8 --threads 1 --no-kernels 2>/dev/null)
if [ "$kern_on" != "$kern_off" ]; then
    echo "tier1 FAIL: fig8 output differs between kernels on and --no-kernels" >&2
    diff <(echo "$kern_on") <(echo "$kern_off") >&2 || true
    exit 1
fi
echo "  fig8: bit-identical with kernels on and off"

echo "== tier1: repro --race-check smoke (schedule soundness)"
# Every benchmark x strategy must be certified race-free by the
# happens-before detector — the only oracle that can see missing
# synchronization in a deterministic simulator.
./target/release/repro --race-check --scale 0.1 --procs 8

echo "== tier1: repro explain stencil smoke (memory profiler end-to-end)"
# The explain pipeline must run every strategy with the profiler on,
# render the ranked attribution table, and emit the JSON artifact.
explain_out=$(./target/release/repro explain stencil --scale 0.1 --procs 32 2>/dev/null)
for needle in "why is this slow" "diagnosis:" "false-sh"; do
    if ! grep -q "$needle" <<<"$explain_out"; then
        echo "tier1 FAIL: 'repro explain stencil' output missing '$needle'" >&2
        exit 1
    fi
done
if [ ! -s results/explain_stencil.json ]; then
    echo "tier1 FAIL: results/explain_stencil.json not written" >&2
    exit 1
fi
echo "  explain stencil: table + diagnosis + JSON artifact OK"

echo "== tier1: repro chaos smoke (seeded fault injection, bit-identity)"
# The chaos oracle: a sweep under seeded injected faults (worker panics,
# checkpoint corruption, stuck cells, whole-sweep kills) must converge
# bit-identical to a fault-free sweep. The binary exits non-zero on any
# divergence; we additionally require the seed to actually fire faults.
chaos_out=$(./target/release/repro chaos stencil --scale 0.1 --seed 42 --faults 6 --threads 2 --out results/chaos-smoke 2>/dev/null)
echo "$chaos_out"
if ! grep -q "BIT-IDENTICAL" <<<"$chaos_out"; then
    echo "tier1 FAIL: chaos sweep did not converge bit-identical" >&2
    exit 1
fi
fired=$(grep -c '^  fired' <<<"$chaos_out" || true)
if [ "${fired:-0}" -lt 3 ]; then
    echo "tier1 FAIL: chaos smoke fired only ${fired} fault(s) (need >= 3 to mean anything)" >&2
    exit 1
fi
echo "  chaos: ${fired} faults fired, converged bit-identical"

echo "== tier1: repro native smoke (threaded backend vs simulator)"
# The third leg of the differential oracle, standalone: every benchmark x
# strategy executed on real threads under jitter stress, checksums
# bit-identical to the simulator. The binary exits non-zero on any
# divergence (after dumping a minimized repro to results/).
native_out=$(./target/release/repro native --scale 0.1 --procs 8 --reps 4 2>/dev/null)
echo "$native_out"
if ! grep -q "all 21 cells bit-identical to the simulator" <<<"$native_out"; then
    echo "tier1 FAIL: native backend did not match the simulator on all cells" >&2
    exit 1
fi

echo "== tier1: repro table1 --cache warm rerun (zero executions)"
# The content-addressed cache's acceptance bar: a second run against the
# same store must execute nothing (every cell served by key) and print a
# byte-identical table. Stats go to stderr, so stdout diffs are clean.
rm -rf results/cache-smoke
cold_out=$(./target/release/repro table1 --scale 0.1 --procs 8 \
    --cache --cache-dir results/cache-smoke/cache \
    --out results/cache-smoke/ckpt1 2>results/cache-smoke-cold.err)
if ! grep -q "cells executed 28 served 0" results/cache-smoke-cold.err; then
    echo "tier1 FAIL: cold cached table1 did not execute all 28 cells" >&2
    cat results/cache-smoke-cold.err >&2
    exit 1
fi
warm_out=$(./target/release/repro table1 --scale 0.1 --procs 8 \
    --cache --cache-dir results/cache-smoke/cache \
    --out results/cache-smoke/ckpt2 2>results/cache-smoke-warm.err)
if ! grep -q "cells executed 0 served 28" results/cache-smoke-warm.err; then
    echo "tier1 FAIL: warm cached table1 executed cells (must serve all 28 from the store)" >&2
    cat results/cache-smoke-warm.err >&2
    exit 1
fi
if [ "$cold_out" != "$warm_out" ]; then
    echo "tier1 FAIL: warm cached table1 output differs from the cold run" >&2
    diff <(echo "$cold_out") <(echo "$warm_out") >&2 || true
    exit 1
fi
echo "  table1 --cache: 28 cells cold, 0 executed warm, tables byte-identical"

echo "== tier1: repro serve smoke (HTTP API end-to-end)"
# The sweep service: bind an ephemeral port, submit the suite as a job,
# poll it to completion, and require the served table to be byte-for-byte
# what a direct `repro table1` with the same parameters prints — then a
# clean drain-and-exit through POST /api/shutdown.
rm -rf results/serve-smoke
mkdir -p results/serve-smoke
./target/release/repro serve --port 0 \
    --cache-dir results/serve-smoke/cache --out results/serve-smoke/ckpt \
    --workers 2 --threads 2 \
    >results/serve-smoke/stdout.log 2>results/serve-smoke/stderr.log &
serve_pid=$!
port=""
for _ in $(seq 1 100); do
    port=$(sed -nE 's|.*127\.0\.0\.1:([0-9]+).*|\1|p' results/serve-smoke/stdout.log 2>/dev/null || true)
    [ -n "$port" ] && break
    sleep 0.1
done
if [ -z "$port" ]; then
    echo "tier1 FAIL: serve never reported its listening port" >&2
    cat results/serve-smoke/stderr.log >&2 || true
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
sub=$(curl -sS -X POST "http://127.0.0.1:$port/api/sweep" --data '{"scale_milli":100,"procs":8}')
job=$(sed -nE 's|.*"job":([0-9]+).*|\1|p' <<<"$sub")
if [ -z "$job" ]; then
    echo "tier1 FAIL: sweep submission rejected: $sub" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
state=""
for _ in $(seq 1 600); do
    state=$(curl -sS "http://127.0.0.1:$port/api/job/$job")
    grep -q '"state":"done"' <<<"$state" && break
    sleep 0.2
done
if ! grep -q '"state":"done"' <<<"$state"; then
    echo "tier1 FAIL: serve job $job never finished: $state" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
table=$(curl -sS "http://127.0.0.1:$port/api/job/$job/table")
direct=$(./target/release/repro table1 --scale 0.1 --procs 8 \
    --cache --cache-dir results/serve-smoke/direct-cache \
    --out results/serve-smoke/direct-ckpt 2>/dev/null)
if [ "$table" != "$direct" ]; then
    echo "tier1 FAIL: served table differs from direct 'repro table1' output" >&2
    diff <(echo "$table") <(echo "$direct") >&2 || true
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
curl -sS -X POST "http://127.0.0.1:$port/api/shutdown" >/dev/null
shut=1
for _ in $(seq 1 100); do
    if ! kill -0 "$serve_pid" 2>/dev/null; then shut=0; break; fi
    sleep 0.1
done
if [ "$shut" -ne 0 ]; then
    echo "tier1 FAIL: serve did not exit within 10s of /api/shutdown" >&2
    kill "$serve_pid" 2>/dev/null || true
    exit 1
fi
wait "$serve_pid" 2>/dev/null || true
if ! grep -q "shut down cleanly" results/serve-smoke/stderr.log; then
    echo "tier1 FAIL: serve exited without draining cleanly" >&2
    cat results/serve-smoke/stderr.log >&2 || true
    exit 1
fi
echo "  serve: submit/poll/fetch matches table1 byte-for-byte, clean shutdown"

echo "== tier1: repro table1 --scale 0.25 smoke (budget ${BUDGET}s)"
start=$(date +%s)
out=$(./target/release/repro table1 --scale 0.25 2>/dev/null)
end=$(date +%s)
elapsed=$((end - start))

echo "$out"
echo "[smoke took ${elapsed}s]"

# The table must contain every benchmark row.
for bench in vpenta lu stencil adi erlebacher swm256 tomcatv; do
    if ! grep -q "$bench" <<<"$out"; then
        echo "tier1 FAIL: '$bench' missing from table1 output" >&2
        exit 1
    fi
done

if [ "$elapsed" -gt "$BUDGET" ]; then
    echo "tier1 FAIL: smoke run took ${elapsed}s > budget ${BUDGET}s" >&2
    exit 1
fi

# Opt-in scaling measurement: multi-core hosts set TIER1_SIM_SCALING=1 to
# produce the ROADMAP item-1/item-3 thread-scaling artifact (criterion
# output under target/criterion/). Off by default — on a one-core CI box
# the numbers are meaningless and the run is slow.
if [ -n "${TIER1_SIM_SCALING:-}" ]; then
    echo "== tier1: sim_scaling bench (TIER1_SIM_SCALING set)"
    cargo bench -p dct-bench --bench sim_scaling
fi

echo "tier1 OK"
