#!/usr/bin/env bash
# Tier-1 verification: release build, full test suite, and a scaled-down
# `repro table1` smoke run that must stay inside a wall-time budget and
# produce a well-formed table. Run from the repository root:
#
#   scripts/tier1.sh [smoke-budget-seconds]
#
# The smoke budget (default 120 s) is generous: at --scale 0.25 the sweep
# takes ~2 s on one core with the strided engine; blowing the budget means
# a serious performance regression, not noise.
set -euo pipefail
cd "$(dirname "$0")/.."

BUDGET="${1:-120}"

echo "== tier1: cargo build --release"
cargo build --release

echo "== tier1: cargo test -q"
cargo test -q

echo "== tier1: repro table1 --scale 0.25 smoke (budget ${BUDGET}s)"
start=$(date +%s)
out=$(./target/release/repro table1 --scale 0.25 2>/dev/null)
end=$(date +%s)
elapsed=$((end - start))

echo "$out"
echo "[smoke took ${elapsed}s]"

# The table must contain every benchmark row.
for bench in vpenta lu stencil adi erlebacher swm256 tomcatv; do
    if ! grep -q "$bench" <<<"$out"; then
        echo "tier1 FAIL: '$bench' missing from table1 output" >&2
        exit 1
    fi
done

if [ "$elapsed" -gt "$BUDGET" ]; then
    echo "tier1 FAIL: smoke run took ${elapsed}s > budget ${BUDGET}s" >&2
    exit 1
fi

echo "tier1 OK"
