pub use dct_core::*;
