//! Qualitative reproduction of the paper's evaluation (Section 6): the
//! *shapes* of the figures — who wins, where the pathologies appear — at
//! moderate problem sizes. Absolute numbers differ from the paper (our
//! substrate is a simulator, not the DASH prototype); the orderings and
//! crossovers are what these tests pin down.

use dct_bench::programs;
use dct_core::{sequential_cycles, speedup_curve, Strategy};

fn speedups(
    prog: &dct_core::ir::Program,
    strategy: Strategy,
    procs: &[usize],
) -> Vec<f64> {
    let params = prog.default_params();
    let seq = sequential_cycles(prog, &params).unwrap();
    speedup_curve(prog, strategy, procs, &params, seq).unwrap()
        .into_iter()
        .map(|p| p.speedup)
        .collect()
}

/// Figure 4 (vpenta): the base compiler stalls at a small speedup while
/// the fully optimized version keeps scaling.
#[test]
fn fig4_vpenta_shape() {
    let prog = programs::vpenta(128, 3);
    let base = speedups(&prog, Strategy::Base, &[16]);
    let full = speedups(&prog, Strategy::Full, &[16]);
    assert!(base[0] < 6.0, "base should stall, got {:.1}", base[0]);
    assert!(full[0] > 10.0, "full should scale, got {:.1}", full[0]);
    assert!(full[0] > 2.0 * base[0], "paper: ~3.4x gap at 32 procs");
}

/// Figure 6 (LU): comp-decomp alone is conflict-ridden at powers of two —
/// 31 processors beat 32 — while the data transformation stabilizes it.
#[test]
fn fig6_lu_conflict_pathology() {
    let prog = programs::lu(256);
    let comp = speedups(&prog, Strategy::CompDecomp, &[31, 32]);
    assert!(
        comp[0] > 1.2 * comp[1],
        "31 procs ({:.1}) must beat 32 ({:.1}) under cyclic columns without transform",
        comp[0],
        comp[1]
    );
    let full = speedups(&prog, Strategy::Full, &[31, 32]);
    assert!(
        full[1] > comp[1],
        "transform must fix the 32-processor case: {:.1} vs {:.1}",
        full[1],
        comp[1]
    );
    // Full beats base decisively (paper: 19.5 -> 33.5 at 1Kx1K).
    let base = speedups(&prog, Strategy::Base, &[32]);
    assert!(full[1] > 2.0 * base[0]);
}

/// Figure 8 (stencil): 2-D blocks *without* the data transformation are
/// worse than the base compiler; with it they are competitive or better.
#[test]
fn fig8_stencil_shape() {
    let prog = programs::stencil(256, 4);
    let base = speedups(&prog, Strategy::Base, &[16]);
    let comp = speedups(&prog, Strategy::CompDecomp, &[16]);
    let full = speedups(&prog, Strategy::Full, &[16]);
    assert!(
        comp[0] < 0.7 * base[0],
        "comp-decomp alone ({:.1}) must lose to base ({:.1})",
        comp[0],
        base[0]
    );
    assert!(
        full[0] > 0.9 * base[0],
        "with the transform ({:.1}) it must recover to base ({:.1})",
        full[0],
        base[0]
    );
}

/// Figure 10 (ADI): the pipelined column decomposition beats base, and
/// the data transformation adds nothing (already contiguous).
#[test]
fn fig10_adi_shape() {
    let prog = programs::adi(256, 3);
    let base = speedups(&prog, Strategy::Base, &[32]);
    let comp = speedups(&prog, Strategy::CompDecomp, &[32]);
    let full = speedups(&prog, Strategy::Full, &[32]);
    assert!(comp[0] > 1.3 * base[0], "comp {:.1} vs base {:.1}", comp[0], base[0]);
    let rel = (full[0] - comp[0]).abs() / comp[0];
    assert!(rel < 0.05, "transform must be a no-op for ADI ({rel:.3})");
}

/// Figure 11 (erlebacher): modest improvement (most phases already local).
#[test]
fn fig11_erlebacher_shape() {
    // Run at the paper's size (64^3): the replication and realignment
    // costs only amortize at realistic volume.
    let prog = programs::erlebacher(64);
    let base = speedups(&prog, Strategy::Base, &[16]);
    let full = speedups(&prog, Strategy::Full, &[16]);
    assert!(full[0] > base[0], "full {:.1} must beat base {:.1}", full[0], base[0]);
    assert!(full[0] < 3.0 * base[0], "improvement should be modest");
}

/// Figure 12 (swm256): base is already good; full ends slightly ahead.
#[test]
fn fig12_swm_shape() {
    let prog = programs::swm256(257, 3);
    let base = speedups(&prog, Strategy::Base, &[32]);
    let comp = speedups(&prog, Strategy::CompDecomp, &[32]);
    let full = speedups(&prog, Strategy::Full, &[32]);
    assert!(base[0] > 10.0, "base should scale well, got {:.1}", base[0]);
    assert!(comp[0] < base[0], "2-D without transform must lose");
    assert!(full[0] > 0.95 * base[0], "full ({:.1}) regains base ({:.1})", full[0], base[0]);
}

/// Figure 13 (tomcatv): base limited by alternating row/column
/// partitioning; the fixed block-row decomposition with contiguous rows
/// wins big (paper: 4.9 -> 18).
#[test]
fn fig13_tomcatv_shape() {
    let prog = programs::tomcatv(257, 3);
    let base = speedups(&prog, Strategy::Base, &[32]);
    let full = speedups(&prog, Strategy::Full, &[32]);
    assert!(full[0] > 1.4 * base[0], "full {:.1} vs base {:.1}", full[0], base[0]);
}
