//! Table 1 reproduction: the decompositions the compiler finds for every
//! benchmark must match the paper's "Data Decompositions" column, and the
//! critical-technique flags must match its check marks.

use dct_bench::programs;
use dct_core::{Compiler, Strategy};

fn hpf(name: &str, prog: &dct_core::ir::Program) -> Vec<String> {
    let c = Compiler::new(Strategy::Full).compile(prog).unwrap();
    let all = c.decomposition.hpf_all(&c.program);
    println!("{name}: {all:?}");
    all
}

#[test]
fn vpenta_decompositions() {
    let all = hpf("vpenta", &programs::vpenta(64, 3));
    // Paper: F(*, BLOCK, *), A(*, BLOCK).
    assert!(all.contains(&"F(*, BLOCK, *)".to_string()));
    assert!(all.contains(&"A(*, BLOCK)".to_string()));
    assert!(all.contains(&"X(*, BLOCK)".to_string()));
}

#[test]
fn lu_decompositions() {
    let all = hpf("lu", &programs::lu(64));
    assert_eq!(all, vec!["A(*, CYCLIC)"]);
}

#[test]
fn stencil_decompositions() {
    let all = hpf("stencil", &programs::stencil(64, 2));
    assert!(all.contains(&"A(BLOCK, BLOCK)".to_string()));
}

#[test]
fn adi_decompositions() {
    let all = hpf("adi", &programs::adi(64, 2));
    assert!(all.contains(&"A(*, BLOCK)".to_string()));
    assert!(all.contains(&"X(*, BLOCK)".to_string()));
}

#[test]
fn erlebacher_decompositions() {
    let all = hpf("erlebacher", &programs::erlebacher(24));
    assert!(all.contains(&"DUX(*, *, BLOCK)".to_string()));
    assert!(all.contains(&"DUY(*, *, BLOCK)".to_string()));
    assert!(all.contains(&"DUZ(*, BLOCK, *)".to_string()));
    assert!(all.contains(&"U(replicated)".to_string()));
}

#[test]
fn swm256_decompositions() {
    let all = hpf("swm256", &programs::swm256(65, 2));
    assert!(all.contains(&"P(BLOCK, BLOCK)".to_string()));
}

#[test]
fn tomcatv_decompositions() {
    let all = hpf("tomcatv", &programs::tomcatv(65, 2));
    assert!(all.contains(&"AA(BLOCK, *)".to_string()));
    assert!(all.contains(&"X(BLOCK, *)".to_string()));
}

/// The harness's Table 1 runs end to end at a small scale and produces
/// sane rows: positive speedups, every paper benchmark present.
#[test]
fn table1_harness_small_scale() {
    let rows = dct_bench::table1(8, 0.25);
    assert_eq!(rows.len(), 7);
    for r in &rows {
        let base = r.base_speedup.unwrap_or_else(|| panic!("{}: {:?}", r.program, r.notes));
        let full = r.full_speedup.unwrap_or_else(|| panic!("{}: {:?}", r.program, r.notes));
        assert!(base > 0.2, "{}: base {base}", r.program);
        assert!(full > 0.5, "{}: full {full}", r.program);
        assert!(!r.decompositions.is_empty(), "{}: no decompositions", r.program);
    }
    let names: Vec<&str> = rows.iter().map(|r| r.program.as_str()).collect();
    assert_eq!(names, vec!["vpenta", "lu", "stencil", "adi", "erlebacher", "swm256", "tomcatv"]);
}

/// ADI: the paper marks only computation decomposition as critical (data
/// already contiguous); the pipeline must be present.
#[test]
fn adi_pipeline_and_no_transform() {
    let prog = programs::adi(64, 2);
    let c = Compiler::new(Strategy::Full).compile(&prog).unwrap();
    assert!(c.decomposition.comp.iter().any(|cd| cd.pipeline_level.is_some()));
    let opts = dct_core::spmd::SpmdOptions {
        procs: 8,
        params: prog.default_params(),
        transform_data: true,
        barrier_elision: true,
        cost: dct_core::spmd::CostModel::default(),
    };
    let sp = dct_core::spmd::codegen(&c.program, &c.decomposition, &opts).unwrap();
    assert!(sp.layouts.iter().all(|l| !l.transformed));
}

/// Vpenta: only the 3-D array needs restructuring.
#[test]
fn vpenta_transforms_only_f() {
    let prog = programs::vpenta(64, 3);
    let c = Compiler::new(Strategy::Full).compile(&prog).unwrap();
    let opts = dct_core::spmd::SpmdOptions {
        procs: 8,
        params: prog.default_params(),
        transform_data: true,
        barrier_elision: true,
        cost: dct_core::spmd::CostModel::default(),
    };
    let sp = dct_core::spmd::codegen(&c.program, &c.decomposition, &opts).unwrap();
    let transformed: Vec<&str> = sp
        .layouts
        .iter()
        .enumerate()
        .filter(|(_, l)| l.transformed)
        .map(|(x, _)| c.program.arrays[x].name.as_str())
        .collect();
    assert_eq!(transformed, vec!["F"]);
}
