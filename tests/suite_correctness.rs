//! Numeric correctness of the whole benchmark suite: every strategy and
//! processor count computes bit-identical array contents, because the
//! compiler only reorders provably independent iterations.

use dct_bench::programs::{self, Benchmark};
use dct_core::{Compiler, Strategy};
use dct_core::spmd::{simulate_with_values, SimOptions};

fn values_for(b: &Benchmark, strategy: Strategy, procs: usize) -> Vec<Vec<f64>> {
    let c = Compiler::new(strategy);
    let compiled = c.compile(&b.program).unwrap();
    let opts = c.sim_options(procs, b.program.default_params());
    let mut o = SimOptions::new(procs, opts.params.clone());
    o.transform_data = opts.transform_data;
    o.barrier_elision = opts.barrier_elision;
    simulate_with_values(&compiled.program, &compiled.decomposition, &o).unwrap().1
}

fn assert_same(a: &[Vec<f64>], b: &[Vec<f64>], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: array count");
    for (x, (va, vb)) in a.iter().zip(b).enumerate() {
        assert_eq!(va.len(), vb.len(), "{what}: array {x} size");
        for (k, (p, q)) in va.iter().zip(vb).enumerate() {
            assert!(
                p == q || (p.is_nan() && q.is_nan()),
                "{what}: array {x} element {k}: {p} != {q}"
            );
        }
    }
}

#[test]
fn whole_suite_is_deterministic_across_strategies_and_procs() {
    // Tiny scale: exhaustive value comparison.
    for b in programs::suite(0.09) {
        let reference = values_for(&b, Strategy::Base, 1);
        for strategy in Strategy::ALL {
            for procs in [1usize, 3, 8] {
                let got = values_for(&b, strategy, procs);
                assert_same(
                    &reference,
                    &got,
                    &format!("{} {} P={procs}", b.name, strategy.label()),
                );
            }
        }
    }
}

#[test]
fn results_are_finite_and_nontrivial() {
    for b in programs::suite(0.09) {
        let vals = values_for(&b, Strategy::Full, 4);
        let mut nonzero = 0usize;
        for arr in &vals {
            for &v in arr {
                assert!(v.is_finite(), "{}: non-finite value", b.name);
                if v != 0.0 {
                    nonzero += 1;
                }
            }
        }
        assert!(nonzero > 0, "{}: all zeros — kernel did nothing", b.name);
    }
}
