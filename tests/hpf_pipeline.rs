//! End-to-end HPF input path: user directives drive the data mapping, the
//! compiler derives the computation mapping and layouts, and the result is
//! numerically identical to the automatic path.

use dct_bench::programs;
use dct_core::decomp::{decomposition_from_hpf, parse_hpf};
use dct_core::dep::{analyze_nest, DepConfig};
use dct_core::spmd::{simulate_with_values, SimOptions};
use dct_core::{Compiler, Strategy};

#[test]
fn hpf_mapping_matches_automatic_lu() {
    let prog = programs::lu(24);
    let cfg = DepConfig { nparams: prog.params.len(), param_min: 4 };
    let deps: Vec<_> = prog.nests.iter().map(|n| analyze_nest(n, cfg)).collect();

    let directives = parse_hpf("!HPF$ DISTRIBUTE A(*, CYCLIC)").unwrap();
    let hpf_dec = decomposition_from_hpf(&prog, &deps, &directives).unwrap();
    let auto = Compiler::new(Strategy::Full).compile(&prog).unwrap();

    // Same data decomposition.
    assert_eq!(hpf_dec.hpf_of(&prog, 0), auto.decomposition.hpf_of(&auto.program, 0));

    // Same computed values as the automatic compilation and the sequential
    // reference.
    let params = prog.default_params();
    let (_, seq) = simulate_with_values(&prog, &hpf_dec, &SimOptions::new(1, params.clone())).unwrap();
    for procs in [2usize, 5, 8] {
        let (_, hv) = simulate_with_values(&prog, &hpf_dec, &SimOptions::new(procs, params.clone())).unwrap();
        for (x, (a, b)) in seq.iter().zip(&hv).enumerate() {
            for (k, (p, q)) in a.iter().zip(b).enumerate() {
                assert!(p == q, "HPF P={procs}: array {x} elem {k}: {p} != {q}");
            }
        }
    }
}

#[test]
fn hpf_bad_mapping_still_correct_just_slower() {
    // A deliberately poor user mapping (block rows for LU) must still be
    // numerically correct — the compiler only loses performance, never
    // correctness.
    let prog = programs::lu(24);
    let cfg = DepConfig { nparams: prog.params.len(), param_min: 4 };
    let deps: Vec<_> = prog.nests.iter().map(|n| analyze_nest(n, cfg)).collect();
    let directives = parse_hpf("!HPF$ DISTRIBUTE A(BLOCK, *)").unwrap();
    let dec = decomposition_from_hpf(&prog, &deps, &directives).unwrap();

    let params = prog.default_params();
    let (_, seq) = simulate_with_values(&prog, &dec, &SimOptions::new(1, params.clone())).unwrap();
    let (_, par) = simulate_with_values(&prog, &dec, &SimOptions::new(6, params.clone())).unwrap();
    for (a, b) in seq.iter().zip(&par) {
        for (p, q) in a.iter().zip(b) {
            assert!(p == q);
        }
    }
}

#[test]
fn hpf_block_cyclic_exercises_all_machinery() {
    // CYCLIC(b) forces the three-way strip-mine layout and the
    // block-cyclic owned-iteration scheduling.
    let prog = programs::stencil(32, 2);
    let cfg = DepConfig { nparams: prog.params.len(), param_min: 4 };
    let deps: Vec<_> = prog.nests.iter().map(|n| analyze_nest(n, cfg)).collect();
    let directives = parse_hpf("!HPF$ DISTRIBUTE A(CYCLIC(4), *)\n!HPF$ DISTRIBUTE B(CYCLIC(4), *)")
        .unwrap();
    let dec = decomposition_from_hpf(&prog, &deps, &directives).unwrap();
    assert_eq!(dec.hpf_of(&prog, 0), "A(CYCLIC(4), *)");

    let params = prog.default_params();
    let (_, seq) = simulate_with_values(&prog, &dec, &SimOptions::new(1, params.clone())).unwrap();
    let (r, par) = simulate_with_values(&prog, &dec, &SimOptions::new(4, params.clone())).unwrap();
    assert!(r.cycles > 0);
    for (a, b) in seq.iter().zip(&par) {
        for (p, q) in a.iter().zip(b) {
            assert!(p == q, "block-cyclic execution must stay exact");
        }
    }
}
